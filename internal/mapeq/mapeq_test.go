package mapeq

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/pagerank"
	"github.com/asamap/asamap/internal/rng"
)

func TestPlogp(t *testing.T) {
	if Plogp(0) != 0 {
		t.Fatal("Plogp(0) != 0")
	}
	if Plogp(1) != 0 {
		t.Fatal("Plogp(1) != 0")
	}
	if math.Abs(Plogp(0.5)-(-0.5)) > 1e-15 {
		t.Fatalf("Plogp(0.5) = %g, want -0.5", Plogp(0.5))
	}
	if Plogp(-1) != 0 {
		t.Fatal("Plogp of negative should be 0")
	}
}

func twoTriangles(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6, false)
	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestUndirectedFlowSums(t *testing.T) {
	g := twoTriangles(t)
	f, err := NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range f.NodeFlow {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("node flows sum to %g", sum)
	}
	arcSum := 0.0
	for _, fl := range f.OutFlow {
		arcSum += fl
	}
	if math.Abs(arcSum-1) > 1e-12 {
		t.Fatalf("arc flows sum to %g (no self-loops in this graph)", arcSum)
	}
	// Conservation: ArcOut == NodeFlow for every vertex (no teleportation).
	for u := 0; u < g.N(); u++ {
		if math.Abs(f.ArcOut[u]-f.NodeFlow[u]) > 1e-12 {
			t.Fatalf("vertex %d: ArcOut %g != NodeFlow %g", u, f.ArcOut[u], f.NodeFlow[u])
		}
	}
}

func TestUndirectedFlowRejectsDirected(t *testing.T) {
	b := graph.NewBuilder(2, true)
	_ = b.AddEdge(0, 1, 1)
	if _, err := NewUndirectedFlow(b.Build()); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestSelfLoopFlowZero(t *testing.T) {
	b := graph.NewBuilder(2, false)
	_ = b.AddEdge(0, 0, 5)
	_ = b.AddEdge(0, 1, 1)
	f, err := NewUndirectedFlow(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	// Arc 0->0 must carry zero flow.
	g := f.G
	nb := g.OutNeighbors(0)
	for i, v := range nb {
		idx := i // vertex 0's row starts at offset 0
		if v == 0 && f.OutFlow[idx] != 0 {
			t.Fatalf("self-loop arc carries flow %g", f.OutFlow[idx])
		}
	}
}

func directedFlow(t *testing.T, g *graph.Graph, damping float64) *Flow {
	t.Helper()
	cfg := pagerank.DefaultConfig()
	cfg.Damping = damping
	res, err := pagerank.Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewDirectedFlow(g, res.Rank, damping)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDirectedFlowConservation(t *testing.T) {
	r := rng.New(101)
	g, err := gen.RMAT(8, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	f := directedFlow(t, g, 0.85)
	for u := 0; u < g.N(); u++ {
		// ArcOut + TeleOut == NodeFlow for vertices without self-loops.
		if g.HasArc(u, u) {
			continue
		}
		got := f.ArcOut[u] + f.TeleOut[u]
		if math.Abs(got-f.NodeFlow[u]) > 1e-9 {
			t.Fatalf("vertex %d: out %g != flow %g", u, got, f.NodeFlow[u])
		}
	}
	landSum := 0.0
	for _, l := range f.Land {
		landSum += l
	}
	if math.Abs(landSum-1) > 1e-12 {
		t.Fatalf("landing shares sum to %g", landSum)
	}
}

func TestDirectedFlowValidation(t *testing.T) {
	b := graph.NewBuilder(2, true)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	if _, err := NewDirectedFlow(g, []float64{1}, 0.85); err == nil {
		t.Fatal("short rank accepted")
	}
	if _, err := NewDirectedFlow(g, []float64{0.5, 0.5}, 1.5); err == nil {
		t.Fatal("bad damping accepted")
	}
	ub := graph.NewBuilder(2, false)
	_ = ub.AddEdge(0, 1, 1)
	if _, err := NewDirectedFlow(ub.Build(), []float64{0.5, 0.5}, 0.85); err == nil {
		t.Fatal("undirected graph accepted by NewDirectedFlow")
	}
}

// moveFlows computes the accumulated arc flows between vertex v and the two
// modules, the way the FindBestCommunity kernel would via hashing.
func moveFlows(f *Flow, membership []uint32, v int, old, newMod uint32) (outOld, inOld, outNew, inNew float64) {
	g := f.G
	base := int64(0)
	for u := 0; u < v; u++ {
		base += int64(g.OutDegree(u))
	}
	nb := g.OutNeighbors(v)
	for i, tgt := range nb {
		if int(tgt) == v {
			continue
		}
		fl := f.OutFlow[int(base)+i]
		switch membership[tgt] {
		case old:
			outOld += fl
		case newMod:
			outNew += fl
		}
	}
	base = 0
	for u := 0; u < v; u++ {
		base += int64(g.InDegree(u))
	}
	in := g.InNeighbors(v)
	for i, src := range in {
		if int(src) == v {
			continue
		}
		fl := f.InFlow[int(base)+i]
		switch membership[src] {
		case old:
			inOld += fl
		case newMod:
			inNew += fl
		}
	}
	return
}

func freshCodelength(t *testing.T, f *Flow, membership []uint32, numModules int) float64 {
	t.Helper()
	mcopy := make([]uint32, len(membership))
	copy(mcopy, membership)
	st, err := NewState(f, mcopy, numModules)
	if err != nil {
		t.Fatal(err)
	}
	return st.Codelength()
}

func TestCodelengthTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	f, err := NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	// The natural partition must beat both all-in-one and all-singletons.
	natural := freshCodelength(t, f, []uint32{0, 0, 0, 1, 1, 1}, 2)
	single := freshCodelength(t, f, []uint32{0, 0, 0, 0, 0, 0}, 1)
	singletons := freshCodelength(t, f, []uint32{0, 1, 2, 3, 4, 5}, 6)
	if natural >= single {
		t.Fatalf("natural %g >= one-module %g", natural, single)
	}
	if natural >= singletons {
		t.Fatalf("natural %g >= singletons %g", natural, singletons)
	}
	// One-module codelength equals the one-level entropy (no exits).
	if math.Abs(single-OneLevelCodelength(f)) > 1e-12 {
		t.Fatalf("one module L %g != one-level entropy %g", single, OneLevelCodelength(f))
	}
}

func TestDeltaMatchesFreshUndirected(t *testing.T) {
	r := rng.New(55)
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{20, 20, 20}, PIn: 0.3, POut: 0.05}, r)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	testDeltaMatchesFresh(t, f, r)
}

func TestDeltaMatchesFreshDirected(t *testing.T) {
	r := rng.New(56)
	g, err := gen.RMAT(6, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	f := directedFlow(t, g, 0.85)
	testDeltaMatchesFresh(t, f, r)
}

// testDeltaMatchesFresh is the central correctness property: for random
// partitions and random single-vertex moves, the O(1) incremental DeltaMove
// must equal the difference of from-scratch codelengths, and Apply must keep
// the incremental state equal to a freshly built one.
func testDeltaMatchesFresh(t *testing.T, f *Flow, r *rng.RNG) {
	t.Helper()
	n := f.G.N()
	const k = 5
	membership := make([]uint32, n)
	for i := range membership {
		membership[i] = uint32(r.Intn(k))
	}
	st, err := NewState(f, membership, k)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		v := r.Intn(n)
		newMod := uint32(r.Intn(k))
		old := st.Module(v)
		if old == newMod {
			if d := st.DeltaMove(f.View(v), newMod, 0, 0, 0, 0); d != 0 {
				t.Fatalf("no-op move has delta %g", d)
			}
			continue
		}
		outOld, inOld, outNew, inNew := moveFlows(f, st.Membership(), v, old, newMod)
		delta := st.DeltaMove(f.View(v), newMod, outOld, inOld, outNew, inNew)

		before := st.Codelength()
		after := make([]uint32, n)
		copy(after, st.Membership())
		after[v] = newMod
		fresh := freshCodelength(t, f, after, k)
		if math.Abs((before+delta)-fresh) > 1e-9 {
			t.Fatalf("trial %d: incremental L %.12f != fresh L %.12f (delta %g)",
				trial, before+delta, fresh, delta)
		}
		// Apply and verify full state consistency.
		st.Apply(f.View(v), newMod, outOld, inOld, outNew, inNew)
		if math.Abs(st.Codelength()-fresh) > 1e-9 {
			t.Fatalf("trial %d: applied L %.12f != fresh L %.12f", trial, st.Codelength(), fresh)
		}
	}
	// After many moves, Refresh must not change the value materially.
	before := st.Codelength()
	st.Refresh()
	if math.Abs(before-st.Codelength()) > 1e-9 {
		t.Fatalf("drift: incremental %g vs recomputed %g", before, st.Codelength())
	}
}

func TestStateAccessors(t *testing.T) {
	g := twoTriangles(t)
	f, _ := NewUndirectedFlow(g)
	st, err := NewState(f, []uint32{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumModules() != 2 {
		t.Fatalf("NumModules = %d", st.NumModules())
	}
	if st.ModuleSize(0) != 3 || st.ModuleSize(1) != 3 {
		t.Fatal("module sizes wrong")
	}
	if math.Abs(st.ModuleFlow(0)+st.ModuleFlow(1)-1) > 1e-12 {
		t.Fatal("module flows do not sum to 1")
	}
	// Exit of each triangle = bridge flow = 1/14 (bridge weight 1 of 2W=14).
	want := 1.0 / 14.0
	if math.Abs(st.ModuleExit(0)-want) > 1e-12 {
		t.Fatalf("ModuleExit(0) = %g, want %g", st.ModuleExit(0), want)
	}
}

func TestNewStateValidation(t *testing.T) {
	g := twoTriangles(t)
	f, _ := NewUndirectedFlow(g)
	if _, err := NewState(f, []uint32{0, 0}, 1); err == nil {
		t.Fatal("short membership accepted")
	}
	if _, err := NewState(f, []uint32{0, 0, 0, 9, 0, 0}, 2); err == nil {
		t.Fatal("out-of-range module accepted")
	}
}

func TestCompactMembership(t *testing.T) {
	m := []uint32{7, 3, 7, 9, 3}
	k := CompactMembership(m)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	want := []uint32{0, 1, 0, 2, 1}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("compacted = %v", m)
		}
	}
	if CompactMembership(nil) != 0 {
		t.Fatal("empty membership should compact to 0 modules")
	}
}

func TestContractPreservesCodelength(t *testing.T) {
	// The codelength of a partition on the base flow must equal the
	// codelength of the singleton partition on the contracted flow, once the
	// leaf node term is carried over. This is the invariant that makes the
	// multi-level scheme of Infomap exact.
	r := rng.New(77)
	g, planted, err := gen.SBM(gen.SBMParams{Sizes: []int{15, 15, 15, 15}, PIn: 0.4, POut: 0.05}, r)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewState(f, append([]uint32(nil), planted...), 4)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := f.Contract(planted, 4)
	if err != nil {
		t.Fatal(err)
	}
	singles := make([]uint32, sf.G.N())
	for i := range singles {
		singles[i] = uint32(i)
	}
	super, err := NewState(sf, singles, sf.G.N())
	if err != nil {
		t.Fatal(err)
	}
	super.OverrideNodeTerm(base.NodeTerm())
	if math.Abs(base.Codelength()-super.Codelength()) > 1e-9 {
		t.Fatalf("contraction changed codelength: %g vs %g", base.Codelength(), super.Codelength())
	}
}

func TestContractDirectedPreservesCodelength(t *testing.T) {
	r := rng.New(78)
	g, err := gen.RMAT(6, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	f := directedFlow(t, g, 0.85)
	n := g.N()
	membership := make([]uint32, n)
	for i := range membership {
		membership[i] = uint32(r.Intn(6))
	}
	mcopy := append([]uint32(nil), membership...)
	k := CompactMembership(mcopy)
	base, err := NewState(f, append([]uint32(nil), mcopy...), k)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := f.Contract(mcopy, k)
	if err != nil {
		t.Fatal(err)
	}
	singles := make([]uint32, sf.G.N())
	for i := range singles {
		singles[i] = uint32(i)
	}
	super, err := NewState(sf, singles, sf.G.N())
	if err != nil {
		t.Fatal(err)
	}
	super.OverrideNodeTerm(base.NodeTerm())
	if math.Abs(base.Codelength()-super.Codelength()) > 1e-9 {
		t.Fatalf("directed contraction changed codelength: %g vs %g",
			base.Codelength(), super.Codelength())
	}
}

func TestViewFields(t *testing.T) {
	g := twoTriangles(t)
	f, _ := NewUndirectedFlow(g)
	v := f.View(2) // degree-3 vertex
	if v.Node != 2 {
		t.Fatal("Node field wrong")
	}
	if math.Abs(v.Flow-3.0/14.0) > 1e-12 {
		t.Fatalf("Flow = %g, want 3/14", v.Flow)
	}
	if v.TeleOut != 0 {
		t.Fatal("undirected flow has teleportation")
	}
	if math.Abs(v.ArcOut-v.Flow) > 1e-12 {
		t.Fatal("ArcOut != Flow for undirected vertex")
	}
}

func TestUnrecordedFlowProperties(t *testing.T) {
	r := rng.New(201)
	g, err := gen.RMAT(8, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pagerank.DefaultConfig()
	res, err := pagerank.Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewDirectedFlowUnrecorded(g, res.Rank, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// No teleportation mass; node flows sum to 1 and equal arc in-flows.
	sum := 0.0
	for v := 0; v < g.N(); v++ {
		if f.TeleOut[v] != 0 {
			t.Fatalf("vertex %d has teleport mass %g", v, f.TeleOut[v])
		}
		if math.Abs(f.NodeFlow[v]-f.ArcIn[v]) > 1e-12 {
			t.Fatalf("vertex %d: NodeFlow %g != ArcIn %g", v, f.NodeFlow[v], f.ArcIn[v])
		}
		sum += f.NodeFlow[v]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("unrecorded node flows sum to %g", sum)
	}
}

func TestDeltaMatchesFreshUnrecorded(t *testing.T) {
	// The asymmetric enter/exit bookkeeping must stay exact under the
	// unrecorded model, where module enter and exit genuinely differ.
	r := rng.New(202)
	g, err := gen.RMAT(6, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pagerank.DefaultConfig()
	res, err := pagerank.Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewDirectedFlowUnrecorded(g, res.Rank, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	testDeltaMatchesFresh(t, f, r)
}

func TestUnrecordedEnterExitDiffer(t *testing.T) {
	// A path graph a->b->c: module {a} has exit but no enter.
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	cfg := pagerank.DefaultConfig()
	res, err := pagerank.Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewDirectedFlowUnrecorded(g, res.Rank, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(f, []uint32{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.ModuleExit(0) <= st.ModuleEnter(0) {
		t.Fatalf("source module: exit %g should exceed enter %g",
			st.ModuleExit(0), st.ModuleEnter(0))
	}
	if st.ModuleEnter(2) <= st.ModuleExit(2) {
		t.Fatalf("sink module: enter %g should exceed exit %g",
			st.ModuleEnter(2), st.ModuleExit(2))
	}
}
