package mapeq

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/pagerank"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/sched"
)

// equalFlowsBitwise fails the test unless a and b are structurally identical
// graphs with bit-identical float payloads.
func equalFlowsBitwise(t *testing.T, a, b *Flow, label string) {
	t.Helper()
	if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		t.Fatalf("%s: graph shape differs: %dx%d vs %dx%d", label, a.G.N(), a.G.M(), b.G.N(), b.G.M())
	}
	ae, be := a.G.Edges(), b.G.Edges()
	for i := range ae {
		if ae[i].From != be[i].From || ae[i].To != be[i].To ||
			math.Float64bits(ae[i].Weight) != math.Float64bits(be[i].Weight) {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", label, i, ae[i], be[i])
		}
	}
	pairs := []struct {
		name string
		x, y []float64
	}{
		{"NodeFlow", a.NodeFlow, b.NodeFlow},
		{"TeleOut", a.TeleOut, b.TeleOut},
		{"Land", a.Land, b.Land},
		{"OutFlow", a.OutFlow, b.OutFlow},
		{"InFlow", a.InFlow, b.InFlow},
		{"ArcOut", a.ArcOut, b.ArcOut},
		{"ArcIn", a.ArcIn, b.ArcIn},
	}
	for _, p := range pairs {
		if len(p.x) != len(p.y) {
			t.Fatalf("%s: %s length %d vs %d", label, p.name, len(p.x), len(p.y))
		}
		for i := range p.x {
			if math.Float64bits(p.x[i]) != math.Float64bits(p.y[i]) {
				t.Fatalf("%s: %s[%d] = %x vs %x", label, p.name, i,
					math.Float64bits(p.x[i]), math.Float64bits(p.y[i]))
			}
		}
	}
}

// randomMembership assigns each vertex one of k modules, ensuring every
// module is populated.
func randomMembership(n, k int, r *rng.RNG) []uint32 {
	mem := make([]uint32, n)
	for i := range mem {
		mem[i] = uint32(r.Intn(k))
	}
	for m := 0; m < k && m < n; m++ {
		mem[m] = uint32(m)
	}
	return mem
}

// TestContractParallelMatchesSerial pins the scheduler-independence claim:
// contraction over a worker pool must produce a bit-identical Flow to the
// serial path, for both undirected and directed inputs.
func TestContractParallelMatchesSerial(t *testing.T) {
	r := rng.New(7)
	ug, _, err := gen.LFR(gen.DefaultLFR(400, 0.3), r)
	if err != nil {
		t.Fatal(err)
	}
	uflow, err := NewUndirectedFlow(ug)
	if err != nil {
		t.Fatal(err)
	}

	dg, err := gen.RMAT(8, 8, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pagerank.Compute(dg, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dflow, err := NewDirectedFlow(dg, pr.Rank, 0.85)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		flow *Flow
	}{
		{"undirected", uflow},
		{"directed", dflow},
	} {
		k := 23
		mem := randomMembership(tc.flow.G.N(), k, rng.New(11))
		serial, err := tc.flow.Contract(mem, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			pool := sched.NewPool(workers)
			par, err := tc.flow.ContractParallel(mem, k, pool)
			pool.Close()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			equalFlowsBitwise(t, serial, par, tc.name)
		}
	}
}

// TestContractParallelValidation checks the error paths.
func TestContractParallelValidation(t *testing.T) {
	g := twoTriangles(t)
	f, err := NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Contract([]uint32{0}, 1); err == nil {
		t.Fatal("short membership accepted")
	}
	if _, err := f.Contract([]uint32{0, 0, 0, 1, 1, 9}, 2); err == nil {
		t.Fatal("out-of-range module accepted")
	}
}
