// Package mapeq implements the map equation of Rosvall & Bergstrom: the
// information-theoretic objective that Infomap minimizes. It provides
//
//   - Flow: the stationary random-walk flow on a graph (visit rates, per-arc
//     flows, and teleportation mass), for both undirected graphs (closed form)
//     and directed graphs (from PageRank),
//   - State: per-partition bookkeeping (module exit rates, flow masses) with
//     O(1) incremental ΔL evaluation and application of vertex moves, which is
//     exactly the quantity the FindBestCommunity kernel of the paper computes
//     from its accumulated in/out flows.
//
// Conventions: plogp(x) = x·log2(x); codelengths are in bits per step.
package mapeq

import (
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/sched"
)

// Plogp returns x*log2(x) with the continuous extension Plogp(0) = 0.
func Plogp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

// Flow holds the stationary random-walk flow on a graph level. Arc flows are
// stored parallel to the graph's CSR rows; self-loop arcs carry zero flow
// because a self-transition can never exit a module and therefore never
// enters the map equation.
type Flow struct {
	G *graph.Graph

	NodeFlow []float64 // visit rate p_α of each vertex; sums to ~1
	TeleOut  []float64 // teleportation mass emitted by each vertex
	Land     []float64 // teleportation landing share of each vertex; sums to 1
	OutFlow  []float64 // flow on each out-arc, parallel to G's out CSR
	InFlow   []float64 // flow on each in-arc, parallel to G's in CSR
	ArcOut   []float64 // per vertex: total non-self out-arc flow
	ArcIn    []float64 // per vertex: total non-self in-arc flow
	// ExtIn, when non-nil, is flow entering each vertex from outside the
	// graph (the enter-side analogue of pure-exit TeleOut). The hierarchical
	// driver uses it to represent boundary in-flow when optimizing inside a
	// module.
	ExtIn []float64
}

// NewUndirectedFlow builds the closed-form stationary flow of an unbiased
// random walk on an undirected graph: p_u ∝ strength(u), arc flow w/(2W).
// There is no teleportation.
func NewUndirectedFlow(g *graph.Graph) (*Flow, error) {
	if g.Directed() {
		return nil, fmt.Errorf("mapeq: NewUndirectedFlow on a directed graph")
	}
	n := g.N()
	f := newFlowShell(g)
	total := g.TotalWeight()
	if total == 0 {
		for u := 0; u < n; u++ {
			if n > 0 {
				f.NodeFlow[u] = 1 / float64(n)
				f.Land[u] = 1 / float64(n)
			}
		}
		return f, nil
	}
	idx := 0
	for u := 0; u < n; u++ {
		s := g.OutStrength(u)
		f.NodeFlow[u] = s / total
		f.Land[u] = 1 / float64(n)
		ws := g.OutWeights(u)
		nb := g.OutNeighbors(u)
		for i := range ws {
			fl := ws[i] / total
			if int(nb[i]) == u {
				fl = 0
			}
			f.OutFlow[idx] = fl
			f.ArcOut[u] += fl
			idx++
		}
	}
	// Undirected: in CSR aliases out CSR, flows are symmetric.
	f.InFlow = f.OutFlow
	copy(f.ArcIn, f.ArcOut)
	return f, nil
}

// NewDirectedFlow builds the flow of a teleporting random walk on a directed
// graph from its stationary visit rates (PageRank with the same damping).
// Arc flow u→v is damping·p_u·w_uv/s_u; the remaining (1−damping)·p_u (all of
// p_u for dangling vertices) teleports uniformly over landing shares.
func NewDirectedFlow(g *graph.Graph, rank []float64, damping float64) (*Flow, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("mapeq: NewDirectedFlow on an undirected graph")
	}
	if len(rank) != g.N() {
		return nil, fmt.Errorf("mapeq: rank length %d, want %d", len(rank), g.N())
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("mapeq: damping %g out of (0,1)", damping)
	}
	n := g.N()
	f := newFlowShell(g)
	copy(f.NodeFlow, rank)
	for u := 0; u < n; u++ {
		if n > 0 {
			f.Land[u] = 1 / float64(n)
		}
		s := g.OutStrength(u)
		if s == 0 {
			f.TeleOut[u] = rank[u] // dangling: everything teleports
			continue
		}
		f.TeleOut[u] = (1 - damping) * rank[u]
	}
	// Out-arc flows.
	idx := 0
	for u := 0; u < n; u++ {
		s := g.OutStrength(u)
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i := range nb {
			fl := 0.0
			if s > 0 && int(nb[i]) != u {
				fl = damping * rank[u] * ws[i] / s
			}
			f.OutFlow[idx] = fl
			f.ArcOut[u] += fl
			idx++
		}
	}
	// In-arc flows mirror the out flows.
	idx = 0
	for v := 0; v < n; v++ {
		in, ws := g.InNeighbors(v), g.InWeights(v)
		for i := range in {
			u := int(in[i])
			fl := 0.0
			if s := g.OutStrength(u); s > 0 && u != v {
				fl = damping * rank[u] * ws[i] / s
			}
			f.InFlow[idx] = fl
			f.ArcIn[v] += fl
			idx++
		}
	}
	return f, nil
}

func newFlowShell(g *graph.Graph) *Flow {
	n := g.N()
	f := &Flow{
		G:        g,
		NodeFlow: make([]float64, n),
		TeleOut:  make([]float64, n),
		Land:     make([]float64, n),
		OutFlow:  make([]float64, g.M()),
		ArcOut:   make([]float64, n),
		ArcIn:    make([]float64, n),
	}
	if g.Directed() {
		f.InFlow = make([]float64, g.M())
	}
	return f
}

// Contract aggregates the flow onto the quotient graph induced by
// membership. Super-arcs carry summed boundary flow (intra-module flow
// disappears into implicit self-transitions); node flows, teleportation mass,
// and landing shares sum over members. The resulting level is always
// represented as a directed flow graph, which is exact for both input kinds
// because the map equation consumes only per-arc flows.
//
// Contract runs serially; ContractParallel is the same kernel over a worker
// pool and produces a bit-identical Flow.
func (f *Flow) Contract(membership []uint32, numModules int) (*Flow, error) {
	return f.ContractParallel(membership, numModules, nil)
}

// contractBlocksPerWorker oversubscribes the contraction dispatches so that
// the work-stealing tail can even out degree skew between blocks.
const contractBlocksPerWorker = 4

// ContractParallel is Contract over a sched.Pool (nil or one worker = run
// inline). The kernel is organized so that the result is bit-identical to
// the serial Contract regardless of worker count or steal schedule:
//
//   - Boundary arcs are counted per degree-aware vertex block (exact
//     pre-sizing — no builder growth or rehash churn during contraction),
//     then written into a pre-sized arc array at per-block offsets from a
//     prefix sum. Block concatenation order equals CSR order, so the
//     builder always sees the identical arc sequence and merges duplicate
//     super-arcs in the identical float order.
//   - Per-module member sums (node flow, teleportation, landing mass) are
//     aggregated per worker over disjoint module ranges, each module summing
//     its members in global vertex order — the same addition order as the
//     serial loop, for any worker count.
func (f *Flow) ContractParallel(membership []uint32, numModules int, pool *sched.Pool) (*Flow, error) {
	g := f.G
	n := g.N()
	if len(membership) != n {
		return nil, fmt.Errorf("mapeq: membership length %d, want %d", len(membership), n)
	}
	for u, m := range membership {
		if int(m) >= numModules {
			return nil, fmt.Errorf("mapeq: vertex %d module %d out of range", u, m)
		}
	}
	workers := 1
	if pool != nil {
		workers = pool.Workers()
	}

	// Degree-aware vertex blocks: each block carries ~equal arc work.
	var bounds []int
	if workers > 1 {
		bounds = sched.WeightedBounds(n, workers*contractBlocksPerWorker,
			func(u int) int64 { return int64(g.OutDegree(u)) + 1 })
	} else {
		bounds = []int{0, n}
	}
	nblocks := len(bounds) - 1

	// Pass 1: count boundary arcs (positive flow, crossing modules) per block.
	counts := make([]int, nblocks)
	//asalint:hotroot contraction pass 1: per-block arc counting
	countBlock := func(_, blk, lo, hi int) error {
		c := 0
		for u := lo; u < hi; u++ {
			mu := membership[u]
			alo, _ := g.OutRange(u)
			nb := g.OutNeighbors(u)
			for i := range nb {
				if f.OutFlow[alo+i] > 0 && membership[nb[i]] != mu {
					c++
				}
			}
		}
		counts[blk] = c
		return nil
	}
	if err := dispatch(pool, bounds, countBlock); err != nil {
		return nil, err
	}
	offs := make([]int, nblocks+1)
	for b := 0; b < nblocks; b++ {
		offs[b+1] = offs[b] + counts[b]
	}

	// Pass 2: write boundary arcs at exact offsets, in CSR order per block.
	arcs := make([]graph.Edge, offs[nblocks])
	//asalint:hotroot contraction pass 2: scatter arcs into prefix-summed slots
	fillBlock := func(_, blk, lo, hi int) error {
		pos := offs[blk]
		for u := lo; u < hi; u++ {
			mu := membership[u]
			alo, _ := g.OutRange(u)
			nb := g.OutNeighbors(u)
			for i := range nb {
				fl := f.OutFlow[alo+i]
				if fl <= 0 {
					continue
				}
				mv := membership[nb[i]]
				if mv == mu {
					continue
				}
				arcs[pos] = graph.Edge{From: mu, To: mv, Weight: fl}
				pos++
			}
		}
		return nil
	}
	if err := dispatch(pool, bounds, fillBlock); err != nil {
		return nil, err
	}

	// Exact-count pre-sized builder: no growth or rehash churn.
	b := graph.NewBuilder(numModules, true)
	b.Reserve(len(arcs))
	for _, e := range arcs {
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			return nil, err
		}
	}
	sg := b.Build()
	sf := newFlowShell(sg)

	// Per-module member sums over disjoint module ranges. The member index
	// lists each module's vertices in ascending vertex order, so every
	// module's float sums accumulate in the serial loop's order no matter
	// which worker owns the range.
	memberOffs := make([]int, numModules+1)
	for _, m := range membership {
		memberOffs[m+1]++
	}
	for m := 0; m < numModules; m++ {
		memberOffs[m+1] += memberOffs[m]
	}
	members := make([]int32, n)
	cursor := make([]int, numModules)
	copy(cursor, memberOffs[:numModules])
	for u, m := range membership {
		members[cursor[m]] = int32(u)
		cursor[m]++
	}
	var mbounds []int
	if workers > 1 {
		mbounds = sched.WeightedBounds(numModules, workers*contractBlocksPerWorker,
			func(m int) int64 { return int64(memberOffs[m+1] - memberOffs[m]) })
	} else {
		mbounds = []int{0, numModules}
	}
	//asalint:hotroot contraction pass 3: fold duplicate arcs per community
	sumBlock := func(_, _, lo, hi int) error {
		for m := lo; m < hi; m++ {
			var nf, to, ld float64
			for _, u := range members[memberOffs[m]:memberOffs[m+1]] {
				nf += f.NodeFlow[u]
				to += f.TeleOut[u]
				ld += f.Land[u]
			}
			sf.NodeFlow[m] = nf
			sf.TeleOut[m] = to
			sf.Land[m] = ld
		}
		return nil
	}
	if err := dispatch(pool, mbounds, sumBlock); err != nil {
		return nil, err
	}

	// Super-arc flows are the edge weights themselves.
	idx := 0
	for u := 0; u < sg.N(); u++ {
		ws := sg.OutWeights(u)
		for i := range ws {
			sf.OutFlow[idx] = ws[i]
			sf.ArcOut[u] += ws[i]
			idx++
		}
	}
	idx = 0
	for v := 0; v < sg.N(); v++ {
		ws := sg.InWeights(v)
		for i := range ws {
			sf.InFlow[idx] = ws[i]
			sf.ArcIn[v] += ws[i]
			idx++
		}
	}
	return sf, nil
}

// dispatch runs fn over the blocks on the pool, or inline when no pool (or a
// one-worker pool) is available.
func dispatch(pool *sched.Pool, bounds []int, fn sched.BlockFunc) error {
	if pool == nil || pool.Workers() == 1 {
		for b := 0; b+1 < len(bounds); b++ {
			if err := fn(0, b, bounds[b], bounds[b+1]); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := pool.Dispatch(bounds, sched.Steal, fn)
	return err
}

// NewDirectedFlowUnrecorded builds the "unrecorded teleportation" flow model
// — the default of the modern reference Infomap: teleportation is used only
// to make the walk ergodic (through the PageRank ranks), but teleportation
// steps are not encoded. Arc flows are damping·p_u·w/s_u as in the recorded
// model; the encoded visit rate of each vertex is its arc in-flow, and the
// whole flow field is renormalized to sum to 1. There is no teleportation
// mass in the returned flow, so module enter and exit rates come from arcs
// alone (and generally differ, which the State handles).
func NewDirectedFlowUnrecorded(g *graph.Graph, rank []float64, damping float64) (*Flow, error) {
	f, err := NewDirectedFlow(g, rank, damping)
	if err != nil {
		return nil, err
	}
	n := g.N()
	// Encoded visit rate = arc in-flow; drop teleportation.
	total := 0.0
	for v := 0; v < n; v++ {
		total += f.ArcIn[v]
	}
	if total <= 0 {
		// Arcless graph: fall back to uniform rates with no flow.
		for v := 0; v < n; v++ {
			f.NodeFlow[v] = 1 / float64(n)
			f.TeleOut[v] = 0
		}
		return f, nil
	}
	inv := 1 / total
	for v := 0; v < n; v++ {
		f.NodeFlow[v] = f.ArcIn[v] * inv
		f.TeleOut[v] = 0
		f.ArcOut[v] *= inv
		f.ArcIn[v] *= inv
	}
	for i := range f.OutFlow {
		f.OutFlow[i] *= inv
	}
	if &f.InFlow[0] != &f.OutFlow[0] {
		for i := range f.InFlow {
			f.InFlow[i] *= inv
		}
	}
	return f, nil
}
