// Package mapeq implements the map equation of Rosvall & Bergstrom: the
// information-theoretic objective that Infomap minimizes. It provides
//
//   - Flow: the stationary random-walk flow on a graph (visit rates, per-arc
//     flows, and teleportation mass), for both undirected graphs (closed form)
//     and directed graphs (from PageRank),
//   - State: per-partition bookkeeping (module exit rates, flow masses) with
//     O(1) incremental ΔL evaluation and application of vertex moves, which is
//     exactly the quantity the FindBestCommunity kernel of the paper computes
//     from its accumulated in/out flows.
//
// Conventions: plogp(x) = x·log2(x); codelengths are in bits per step.
package mapeq

import (
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
)

// Plogp returns x*log2(x) with the continuous extension Plogp(0) = 0.
func Plogp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

// Flow holds the stationary random-walk flow on a graph level. Arc flows are
// stored parallel to the graph's CSR rows; self-loop arcs carry zero flow
// because a self-transition can never exit a module and therefore never
// enters the map equation.
type Flow struct {
	G *graph.Graph

	NodeFlow []float64 // visit rate p_α of each vertex; sums to ~1
	TeleOut  []float64 // teleportation mass emitted by each vertex
	Land     []float64 // teleportation landing share of each vertex; sums to 1
	OutFlow  []float64 // flow on each out-arc, parallel to G's out CSR
	InFlow   []float64 // flow on each in-arc, parallel to G's in CSR
	ArcOut   []float64 // per vertex: total non-self out-arc flow
	ArcIn    []float64 // per vertex: total non-self in-arc flow
	// ExtIn, when non-nil, is flow entering each vertex from outside the
	// graph (the enter-side analogue of pure-exit TeleOut). The hierarchical
	// driver uses it to represent boundary in-flow when optimizing inside a
	// module.
	ExtIn []float64
}

// NewUndirectedFlow builds the closed-form stationary flow of an unbiased
// random walk on an undirected graph: p_u ∝ strength(u), arc flow w/(2W).
// There is no teleportation.
func NewUndirectedFlow(g *graph.Graph) (*Flow, error) {
	if g.Directed() {
		return nil, fmt.Errorf("mapeq: NewUndirectedFlow on a directed graph")
	}
	n := g.N()
	f := newFlowShell(g)
	total := g.TotalWeight()
	if total == 0 {
		for u := 0; u < n; u++ {
			if n > 0 {
				f.NodeFlow[u] = 1 / float64(n)
				f.Land[u] = 1 / float64(n)
			}
		}
		return f, nil
	}
	idx := 0
	for u := 0; u < n; u++ {
		s := g.OutStrength(u)
		f.NodeFlow[u] = s / total
		f.Land[u] = 1 / float64(n)
		ws := g.OutWeights(u)
		nb := g.OutNeighbors(u)
		for i := range ws {
			fl := ws[i] / total
			if int(nb[i]) == u {
				fl = 0
			}
			f.OutFlow[idx] = fl
			f.ArcOut[u] += fl
			idx++
		}
	}
	// Undirected: in CSR aliases out CSR, flows are symmetric.
	f.InFlow = f.OutFlow
	copy(f.ArcIn, f.ArcOut)
	return f, nil
}

// NewDirectedFlow builds the flow of a teleporting random walk on a directed
// graph from its stationary visit rates (PageRank with the same damping).
// Arc flow u→v is damping·p_u·w_uv/s_u; the remaining (1−damping)·p_u (all of
// p_u for dangling vertices) teleports uniformly over landing shares.
func NewDirectedFlow(g *graph.Graph, rank []float64, damping float64) (*Flow, error) {
	if !g.Directed() {
		return nil, fmt.Errorf("mapeq: NewDirectedFlow on an undirected graph")
	}
	if len(rank) != g.N() {
		return nil, fmt.Errorf("mapeq: rank length %d, want %d", len(rank), g.N())
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("mapeq: damping %g out of (0,1)", damping)
	}
	n := g.N()
	f := newFlowShell(g)
	copy(f.NodeFlow, rank)
	for u := 0; u < n; u++ {
		if n > 0 {
			f.Land[u] = 1 / float64(n)
		}
		s := g.OutStrength(u)
		if s == 0 {
			f.TeleOut[u] = rank[u] // dangling: everything teleports
			continue
		}
		f.TeleOut[u] = (1 - damping) * rank[u]
	}
	// Out-arc flows.
	idx := 0
	for u := 0; u < n; u++ {
		s := g.OutStrength(u)
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i := range nb {
			fl := 0.0
			if s > 0 && int(nb[i]) != u {
				fl = damping * rank[u] * ws[i] / s
			}
			f.OutFlow[idx] = fl
			f.ArcOut[u] += fl
			idx++
		}
	}
	// In-arc flows mirror the out flows.
	idx = 0
	for v := 0; v < n; v++ {
		in, ws := g.InNeighbors(v), g.InWeights(v)
		for i := range in {
			u := int(in[i])
			fl := 0.0
			if s := g.OutStrength(u); s > 0 && u != v {
				fl = damping * rank[u] * ws[i] / s
			}
			f.InFlow[idx] = fl
			f.ArcIn[v] += fl
			idx++
		}
	}
	return f, nil
}

func newFlowShell(g *graph.Graph) *Flow {
	n := g.N()
	f := &Flow{
		G:        g,
		NodeFlow: make([]float64, n),
		TeleOut:  make([]float64, n),
		Land:     make([]float64, n),
		OutFlow:  make([]float64, g.M()),
		ArcOut:   make([]float64, n),
		ArcIn:    make([]float64, n),
	}
	if g.Directed() {
		f.InFlow = make([]float64, g.M())
	}
	return f
}

// Contract aggregates the flow onto the quotient graph induced by
// membership. Super-arcs carry summed boundary flow (intra-module flow
// disappears into implicit self-transitions); node flows, teleportation mass,
// and landing shares sum over members. The resulting level is always
// represented as a directed flow graph, which is exact for both input kinds
// because the map equation consumes only per-arc flows.
func (f *Flow) Contract(membership []uint32, numModules int) (*Flow, error) {
	g := f.G
	if len(membership) != g.N() {
		return nil, fmt.Errorf("mapeq: membership length %d, want %d", len(membership), g.N())
	}
	b := graph.NewBuilder(numModules, true)
	idx := 0
	for u := 0; u < g.N(); u++ {
		mu := membership[u]
		nb := g.OutNeighbors(u)
		for i := range nb {
			fl := f.OutFlow[idx]
			idx++
			if fl <= 0 {
				continue
			}
			mv := membership[nb[i]]
			if mu == mv {
				continue
			}
			if err := b.AddEdge(mu, mv, fl); err != nil {
				return nil, err
			}
		}
	}
	sg := b.Build()
	sf := newFlowShell(sg)
	for u := 0; u < g.N(); u++ {
		m := membership[u]
		if int(m) >= numModules {
			return nil, fmt.Errorf("mapeq: vertex %d module %d out of range", u, m)
		}
		sf.NodeFlow[m] += f.NodeFlow[u]
		sf.TeleOut[m] += f.TeleOut[u]
		sf.Land[m] += f.Land[u]
	}
	// Super-arc flows are the edge weights themselves.
	idx = 0
	for u := 0; u < sg.N(); u++ {
		ws := sg.OutWeights(u)
		for i := range ws {
			sf.OutFlow[idx] = ws[i]
			sf.ArcOut[u] += ws[i]
			idx++
		}
	}
	idx = 0
	for v := 0; v < sg.N(); v++ {
		ws := sg.InWeights(v)
		for i := range ws {
			sf.InFlow[idx] = ws[i]
			sf.ArcIn[v] += ws[i]
			idx++
		}
	}
	return sf, nil
}

// NewDirectedFlowUnrecorded builds the "unrecorded teleportation" flow model
// — the default of the modern reference Infomap: teleportation is used only
// to make the walk ergodic (through the PageRank ranks), but teleportation
// steps are not encoded. Arc flows are damping·p_u·w/s_u as in the recorded
// model; the encoded visit rate of each vertex is its arc in-flow, and the
// whole flow field is renormalized to sum to 1. There is no teleportation
// mass in the returned flow, so module enter and exit rates come from arcs
// alone (and generally differ, which the State handles).
func NewDirectedFlowUnrecorded(g *graph.Graph, rank []float64, damping float64) (*Flow, error) {
	f, err := NewDirectedFlow(g, rank, damping)
	if err != nil {
		return nil, err
	}
	n := g.N()
	// Encoded visit rate = arc in-flow; drop teleportation.
	total := 0.0
	for v := 0; v < n; v++ {
		total += f.ArcIn[v]
	}
	if total <= 0 {
		// Arcless graph: fall back to uniform rates with no flow.
		for v := 0; v < n; v++ {
			f.NodeFlow[v] = 1 / float64(n)
			f.TeleOut[v] = 0
		}
		return f, nil
	}
	inv := 1 / total
	for v := 0; v < n; v++ {
		f.NodeFlow[v] = f.ArcIn[v] * inv
		f.TeleOut[v] = 0
		f.ArcOut[v] *= inv
		f.ArcIn[v] *= inv
	}
	for i := range f.OutFlow {
		f.OutFlow[i] *= inv
	}
	if &f.InFlow[0] != &f.OutFlow[0] {
		for i := range f.InFlow {
			f.InFlow[i] *= inv
		}
	}
	return f, nil
}
