package mapeq

import (
	"fmt"
	"math"
)

// NodeView bundles the per-vertex flow quantities the FindBestCommunity
// kernel needs when evaluating moves of one vertex.
type NodeView struct {
	Node    int
	Flow    float64 // visit rate p_α
	TeleOut float64 // teleportation mass emitted by α
	Land    float64 // teleportation landing share of α
	ArcOut  float64 // total non-self out-arc flow of α
	ArcIn   float64 // total non-self in-arc flow of α
	ExtIn   float64 // flow entering α from outside the graph (usually 0)
}

// View returns the NodeView of vertex u.
func (f *Flow) View(u int) NodeView {
	v := NodeView{
		Node:    u,
		Flow:    f.NodeFlow[u],
		TeleOut: f.TeleOut[u],
		Land:    f.Land[u],
		ArcOut:  f.ArcOut[u],
		ArcIn:   f.ArcIn[u],
	}
	if f.ExtIn != nil {
		v.ExtIn = f.ExtIn[u]
	}
	return v
}

// OneLevelCodelength returns the codelength of the trivial one-module
// partition: the Shannon entropy of the visit rates. It upper-bounds the
// optimal two-level codelength and is the paper's reference point for
// "compression achieved".
func OneLevelCodelength(f *Flow) float64 {
	h := 0.0
	for _, p := range f.NodeFlow {
		h -= Plogp(p)
	}
	return h
}

// State is the incremental map-equation bookkeeping for one partition of one
// flow level. It supports O(1) evaluation (DeltaMove) and application (Apply)
// of single-vertex moves, mirroring the module statistics HyPC-Map maintains.
//
// State is not safe for concurrent mutation; the parallel kernel in package
// infomap serializes Apply calls and tolerates stale reads during the
// parallel evaluation phase, exactly as the relaxed concurrency of the
// original algorithm does.
type State struct {
	f          *Flow
	membership []uint32

	flow  []float64 // per module: Σ member visit rates
	tele  []float64 // per module: Σ member teleport output
	land  []float64 // per module: Σ member landing shares
	size  []int     // per module: member count
	exit  []float64 // per module: exit rate
	enter []float64 // per module: enter rate

	teleTotal float64 // Σ teleport output over all vertices (constant)

	sumEnter      float64
	sumPlogpEnter float64 // Σ plogp(enter_i)
	sumPlogpExit  float64 // Σ plogp(exit_i)
	sumPlogpBoth  float64 // Σ plogp(exit_i + flow_i)
	nodeTerm      float64 // Σ plogp(p_α), partition independent
	exitOffset    float64 // constant added inside plogp(sumEnter + offset)
}

// NewState builds the bookkeeping for the given membership (dense module IDs
// in [0, numModules)).
func NewState(f *Flow, membership []uint32, numModules int) (*State, error) {
	n := f.G.N()
	if len(membership) != n {
		return nil, fmt.Errorf("mapeq: membership length %d, want %d", len(membership), n)
	}
	s := &State{
		f:          f,
		membership: membership,
		flow:       make([]float64, numModules),
		tele:       make([]float64, numModules),
		land:       make([]float64, numModules),
		size:       make([]int, numModules),
		exit:       make([]float64, numModules),
		enter:      make([]float64, numModules),
	}
	for _, t := range f.TeleOut {
		s.teleTotal += t
	}
	for u := 0; u < n; u++ {
		m := membership[u]
		if int(m) >= numModules {
			return nil, fmt.Errorf("mapeq: vertex %d module %d >= %d", u, m, numModules)
		}
		s.flow[m] += f.NodeFlow[u]
		s.tele[m] += f.TeleOut[u]
		s.land[m] += f.Land[u]
		s.size[m]++
		s.nodeTerm += Plogp(f.NodeFlow[u])
	}
	s.recomputeExits()
	return s, nil
}

// recomputeExits rebuilds q_i and the aggregate codelength terms from
// scratch. Used at construction and to wash out incremental floating-point
// drift after many moves.
func (s *State) recomputeExits() {
	for i := range s.exit {
		s.exit[i] = 0
		s.enter[i] = 0
	}
	f, g := s.f, s.f.G
	idx := 0
	for u := 0; u < g.N(); u++ {
		mu := s.membership[u]
		nb := g.OutNeighbors(u)
		for i := range nb {
			fl := f.OutFlow[idx]
			idx++
			if fl > 0 {
				if mv := s.membership[nb[i]]; mv != mu {
					s.exit[mu] += fl
					s.enter[mv] += fl
				}
			}
		}
	}
	if f.ExtIn != nil {
		for u := 0; u < g.N(); u++ {
			s.enter[s.membership[u]] += f.ExtIn[u]
		}
	}
	for m := range s.exit {
		if s.size[m] > 0 {
			s.exit[m] += s.tele[m] * (1 - s.land[m])
			s.enter[m] += (s.teleTotal - s.tele[m]) * s.land[m]
		}
	}
	s.sumEnter, s.sumPlogpEnter, s.sumPlogpExit, s.sumPlogpBoth = 0, 0, 0, 0
	for m := range s.exit {
		s.sumEnter += s.enter[m]
		s.sumPlogpEnter += Plogp(s.enter[m])
		s.sumPlogpExit += Plogp(s.exit[m])
		s.sumPlogpBoth += Plogp(s.exit[m] + s.flow[m])
	}
}

// Refresh recomputes all aggregates from the current membership, washing out
// incremental floating-point drift.
func (s *State) Refresh() { s.recomputeExits() }

// SetExitOffset adds a constant to the index-codebook rate: the codelength's
// plogp(Σq) term becomes plogp(Σq + offset). The hierarchical driver uses
// this when optimizing inside a module, whose index codebook also encodes
// the module's own (fixed) exit rate.
func (s *State) SetExitOffset(offset float64) { s.exitOffset = offset }

// Codelength returns the current two-level map equation value L(M) in bits.
// The general (directed, possibly non-stationary) form prices the index
// codebook by module *enter* rates and each module codebook by its *exit*
// rate plus member visits; for undirected and stationary recorded flows the
// two rates coincide and this reduces to the familiar symmetric formula.
func (s *State) Codelength() float64 {
	return Plogp(s.sumEnter+s.exitOffset) - s.sumPlogpEnter - s.sumPlogpExit +
		s.sumPlogpBoth - s.nodeTerm
}

// NodeTerm returns the partition-independent Σ plogp(p_α) term.
func (s *State) NodeTerm() float64 { return s.nodeTerm }

// OverrideNodeTerm replaces the node term. The multi-level driver uses this
// at super-node levels: index and exit terms are computed over super nodes,
// but the within-module code must keep pricing the original leaf vertices,
// so the leaf-level Σ plogp(p_α) is carried through the hierarchy.
func (s *State) OverrideNodeTerm(t float64) { s.nodeTerm = t }

// Module returns the module of vertex u.
func (s *State) Module(u int) uint32 { return s.membership[u] }

// Membership returns the underlying membership slice. Callers must treat it
// as read-only; moves go through Apply.
func (s *State) Membership() []uint32 { return s.membership }

// NumModules returns the number of non-empty modules.
func (s *State) NumModules() int {
	n := 0
	for _, c := range s.size {
		if c > 0 {
			n++
		}
	}
	return n
}

// ModuleFlow returns the flow mass of module m.
func (s *State) ModuleFlow(m uint32) float64 { return s.flow[m] }

// ModuleExit returns the exit rate of module m.
func (s *State) ModuleExit(m uint32) float64 { return s.exit[m] }

// ModuleEnter returns the enter rate of module m (equal to ModuleExit for
// undirected and stationary recorded flows).
func (s *State) ModuleEnter(m uint32) float64 { return s.enter[m] }

// ModuleSize returns the member count of module m.
func (s *State) ModuleSize(m uint32) int { return s.size[m] }

// moveDeltas returns the changes to the exit and enter rates of the old and
// new modules if vertex v moved, given the accumulated arc flows between v
// and the two modules (exactly the values the paper's hash accumulation step
// produces): outOld/inOld are v's arc flow to/from other members of its
// current module, outNew/inNew to/from members of newMod.
func (s *State) moveDeltas(v NodeView, old, newMod uint32, outOld, inOld, outNew, inNew float64) (dExitOld, dEnterOld, dExitNew, dEnterNew float64) {
	// Removing v from old: v's boundary out-flow and teleport exits
	// disappear, while arcs and teleportation from remaining members to v
	// become exits; symmetrically for enters.
	dExitOld = -(v.ArcOut - outOld) - v.TeleOut*(1-s.land[old]) +
		inOld + (s.tele[old]-v.TeleOut)*v.Land
	dEnterOld = -(v.ArcIn - inOld) - v.ExtIn - (s.teleTotal-s.tele[old])*v.Land +
		outOld + v.TeleOut*(s.land[old]-v.Land)
	// Adding v to newMod.
	dExitNew = (v.ArcOut - outNew) + v.TeleOut*(1-s.land[newMod]-v.Land) -
		inNew - s.tele[newMod]*v.Land
	dEnterNew = (v.ArcIn - inNew) + v.ExtIn + (s.teleTotal-s.tele[newMod]-v.TeleOut)*v.Land -
		outNew - v.TeleOut*s.land[newMod]
	return
}

// DeltaMove returns the change in codelength (bits) if vertex v moved from
// its current module to newMod. Negative is an improvement. The four flow
// arguments are the accumulated arc flows described at exitDeltas.
func (s *State) DeltaMove(v NodeView, newMod uint32, outOld, inOld, outNew, inNew float64) float64 {
	old := s.membership[v.Node]
	if old == newMod {
		return 0
	}
	dxo, deo, dxn, den := s.moveDeltas(v, old, newMod, outOld, inOld, outNew, inNew)
	exitOld, exitNew := clampNonNeg(s.exit[old]+dxo), clampNonNeg(s.exit[newMod]+dxn)
	enterOld, enterNew := clampNonNeg(s.enter[old]+deo), clampNonNeg(s.enter[newMod]+den)
	sumEnterAfter := s.sumEnter + (enterOld - s.enter[old]) + (enterNew - s.enter[newMod])

	delta := Plogp(sumEnterAfter+s.exitOffset) - Plogp(s.sumEnter+s.exitOffset)
	delta -= Plogp(enterOld) - Plogp(s.enter[old]) + Plogp(enterNew) - Plogp(s.enter[newMod])
	delta -= Plogp(exitOld) - Plogp(s.exit[old]) + Plogp(exitNew) - Plogp(s.exit[newMod])
	delta += Plogp(exitOld+s.flow[old]-v.Flow) - Plogp(s.exit[old]+s.flow[old])
	delta += Plogp(exitNew+s.flow[newMod]+v.Flow) - Plogp(s.exit[newMod]+s.flow[newMod])
	return delta
}

func clampNonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// Apply moves vertex v to newMod and updates all bookkeeping incrementally.
// The flow arguments must be the same values passed to the corresponding
// DeltaMove.
func (s *State) Apply(v NodeView, newMod uint32, outOld, inOld, outNew, inNew float64) {
	old := s.membership[v.Node]
	if old == newMod {
		return
	}
	dxo, deo, dxn, den := s.moveDeltas(v, old, newMod, outOld, inOld, outNew, inNew)
	exitOld, exitNew := clampNonNeg(s.exit[old]+dxo), clampNonNeg(s.exit[newMod]+dxn)
	enterOld, enterNew := clampNonNeg(s.enter[old]+deo), clampNonNeg(s.enter[newMod]+den)

	s.sumEnter += (enterOld - s.enter[old]) + (enterNew - s.enter[newMod])
	s.sumPlogpEnter += Plogp(enterOld) - Plogp(s.enter[old]) +
		Plogp(enterNew) - Plogp(s.enter[newMod])
	s.sumPlogpExit += Plogp(exitOld) - Plogp(s.exit[old]) +
		Plogp(exitNew) - Plogp(s.exit[newMod])
	s.sumPlogpBoth += Plogp(exitOld+s.flow[old]-v.Flow) - Plogp(s.exit[old]+s.flow[old]) +
		Plogp(exitNew+s.flow[newMod]+v.Flow) - Plogp(s.exit[newMod]+s.flow[newMod])

	s.exit[old] = exitOld
	s.exit[newMod] = exitNew
	s.enter[old] = enterOld
	s.enter[newMod] = enterNew
	s.flow[old] -= v.Flow
	s.flow[newMod] += v.Flow
	s.tele[old] -= v.TeleOut
	s.tele[newMod] += v.TeleOut
	s.land[old] -= v.Land
	s.land[newMod] += v.Land
	s.size[old]--
	s.size[newMod]++
	s.membership[v.Node] = newMod

	// Guard against negative drift in emptied modules.
	if s.size[old] == 0 {
		s.flow[old] = clampTiny(s.flow[old])
		s.tele[old] = clampTiny(s.tele[old])
		s.land[old] = clampTiny(s.land[old])
	}
}

func clampTiny(x float64) float64 {
	if math.Abs(x) < 1e-12 {
		return 0
	}
	return x
}

// CompactMembership renumbers the membership to dense module IDs
// [0, k) preserving first-appearance order and returns the module count.
// It is used before contraction to super nodes.
func CompactMembership(membership []uint32) int {
	remap := make(map[uint32]uint32)
	for i, m := range membership {
		id, ok := remap[m]
		if !ok {
			id = uint32(len(remap))
			remap[m] = id
		}
		membership[i] = id
	}
	return len(remap)
}
