// Package fault provides a deterministic, seedable fault injector for the
// simulated distributed substrate (internal/dist). The paper's host
// algorithm, HyPC-Map, is a hybrid MPI+shared-memory Infomap; a production
// deployment of its bulk-synchronous superstep structure must survive an
// imperfect network and mortal ranks. The injector decides, per membership-
// delta message, whether the network delivers, drops, duplicates, or delays
// it, and whether a rank crashes at a given superstep.
//
// Every decision is a pure function of (seed, superstep, sender, receiver,
// attempt): the injector hashes the coordinates instead of consuming a
// shared random stream, so decisions are independent of the order in which
// the simulation asks for them. Two runs with the same seed and the same
// fault configuration therefore inject byte-identical fault schedules — the
// property the replay-determinism tests rely on.
package fault

import (
	"fmt"
	"sync"

	"github.com/asamap/asamap/internal/rng"
)

// Outcome is what the simulated network does with one delta message.
type Outcome int

const (
	// Deliver hands the message to the receiver at the next superstep
	// boundary (the fault-free behaviour).
	Deliver Outcome = iota
	// Drop loses the message; the sender times out and retries with
	// exponential backoff.
	Drop
	// Duplicate delivers the message twice; the receiver must deduplicate
	// (membership-delta application is idempotent, so duplicates cost only
	// redelivered bytes).
	Duplicate
	// Delay delivers the message one superstep late, increasing the
	// staleness of the receiver's ghost membership.
	Delay
	// Reply5xx short-circuits an HTTP exchange with a synthetic 503 from the
	// "network" without reaching the peer — the load-balancer-lied / proxy-
	// reset shape of failure. Only the HTTP Transport adapter produces it;
	// the dist substrate's probability chain never draws it unless FailProb
	// is set.
	Reply5xx
)

// String names the outcome for logs and test failures.
func (o Outcome) String() string {
	switch o {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case Reply5xx:
		return "reply5xx"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Event pins the outcome of one specific message in a fixed schedule,
// overriding the probabilistic draw. Fixed schedules make tests reproducible
// without reverse-engineering hash draws.
type Event struct {
	Step    int // global superstep the message is sent in
	From    int // sending rank
	To      int // receiving rank, or -1 for every receiver
	Outcome Outcome
}

// Config describes a fault scenario.
type Config struct {
	// Seed drives all probabilistic decisions. Independent of the
	// simulation's own seed so the same algorithm run can be replayed under
	// different fault schedules.
	Seed uint64
	// DropProb, DupProb, DelayProb, FailProb are per-message probabilities,
	// applied in that order to a single uniform draw. Their sum must be <= 1.
	// FailProb is the Reply5xx outcome, meaningful only on HTTP paths.
	DropProb  float64
	DupProb   float64
	DelayProb float64
	FailProb  float64
	// InjectCrash enables the rank-crash fault: rank CrashRank crashes at
	// global superstep CrashStep, stays down for CrashDownFor supersteps
	// (minimum 1), and then recovers from its last checkpoint. The explicit
	// flag keeps the zero-value Config fully inert.
	InjectCrash  bool
	CrashRank    int
	CrashStep    int
	CrashDownFor int
	// Schedule lists fixed-outcome events that take precedence over the
	// probabilistic draw for first-attempt sends.
	Schedule []Event
}

// Disabled returns the no-fault configuration (the zero value).
func Disabled() Config {
	return Config{}
}

// Validate checks probability ranges and crash parameters.
func (c Config) Validate() error {
	for _, p := range []float64{c.DropProb, c.DupProb, c.DelayProb, c.FailProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: probability %g out of [0,1]", p)
		}
	}
	if s := c.DropProb + c.DupProb + c.DelayProb + c.FailProb; s > 1 {
		return fmt.Errorf("fault: probabilities sum to %g > 1", s)
	}
	if c.InjectCrash {
		if c.CrashRank < 0 {
			return fmt.Errorf("fault: CrashRank %d < 0", c.CrashRank)
		}
		if c.CrashStep < 0 {
			return fmt.Errorf("fault: CrashStep %d < 0", c.CrashStep)
		}
		if c.CrashDownFor < 0 {
			return fmt.Errorf("fault: CrashDownFor %d < 0", c.CrashDownFor)
		}
	}
	return nil
}

// Enabled reports whether the configuration can inject any fault at all.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.DelayProb > 0 || c.FailProb > 0 ||
		c.InjectCrash || len(c.Schedule) > 0
}

// Stats counts the faults the injector has issued.
type Stats struct {
	Drops      uint64
	Duplicates uint64
	Delays     uint64
	Fails      uint64 // synthetic 5xx replies (HTTP paths only)
	Crashes    uint64
}

// Injector makes fault decisions for one simulation run. A nil *Injector is
// valid and injects nothing, so the fault-free path pays no branches beyond
// a nil check. Decisions are pure functions of their coordinates; the only
// mutable state is the stats block, which is mutex-guarded so the injector
// can sit on concurrent HTTP paths as well as the single-threaded dist
// simulation.
type Injector struct {
	cfg   Config
	mu    sync.Mutex
	stats Stats
}

// New builds an injector from a validated configuration. A configuration
// with no enabled faults returns a nil injector (which is safe to use).
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return &Injector{cfg: cfg}, nil
}

// draw hashes the decision coordinates into a uniform float64 in [0,1).
// rng.Hash64 is the SplitMix64 finalizer; chaining it over the coordinates
// gives a high-quality order-independent stream.
func (in *Injector) draw(step, from, to, attempt int) float64 {
	h := rng.Hash64(in.cfg.Seed ^ 0x66_61_75_6c_74) // "fault"
	h = rng.Hash64(h ^ uint64(step))
	h = rng.Hash64(h ^ uint64(from)<<20 ^ uint64(to))
	h = rng.Hash64(h ^ uint64(attempt)<<40)
	return float64(h>>11) / (1 << 53)
}

// Outcome decides what happens to the delta batch rank `from` sends to rank
// `to` at global superstep `step`. Attempt 0 is the original send; attempts
// >= 1 are retransmissions (which the fixed schedule never overrides, so a
// scheduled Drop is retried and eventually delivered).
func (in *Injector) Outcome(step, from, to, attempt int) Outcome {
	if in == nil {
		return Deliver
	}
	if attempt == 0 {
		for _, e := range in.cfg.Schedule {
			if e.Step == step && e.From == from && (e.To == to || e.To == -1) {
				in.count(e.Outcome)
				return e.Outcome
			}
		}
	}
	u := in.draw(step, from, to, attempt)
	var o Outcome
	switch {
	case u < in.cfg.DropProb:
		o = Drop
	case u < in.cfg.DropProb+in.cfg.DupProb:
		o = Duplicate
	case u < in.cfg.DropProb+in.cfg.DupProb+in.cfg.DelayProb:
		o = Delay
	case u < in.cfg.DropProb+in.cfg.DupProb+in.cfg.DelayProb+in.cfg.FailProb:
		o = Reply5xx
	default:
		o = Deliver
	}
	in.count(o)
	return o
}

func (in *Injector) count(o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	switch o {
	case Drop:
		in.stats.Drops++
	case Duplicate:
		in.stats.Duplicates++
	case Delay:
		in.stats.Delays++
	case Reply5xx:
		in.stats.Fails++
	}
}

// CrashesAt reports whether rank crashes at global superstep step.
func (in *Injector) CrashesAt(rank, step int) bool {
	if in == nil || !in.cfg.InjectCrash {
		return false
	}
	if rank == in.cfg.CrashRank && step == in.cfg.CrashStep {
		in.mu.Lock()
		in.stats.Crashes++
		in.mu.Unlock()
		return true
	}
	return false
}

// DownFor returns how many supersteps a crashed rank stays down (>= 1).
func (in *Injector) DownFor() int {
	if in == nil || in.cfg.CrashDownFor < 1 {
		return 1
	}
	return in.cfg.CrashDownFor
}

// RetryJitter returns a deterministic jitter in [0, spread) supersteps for
// the given retransmission, decorrelating retry storms the way production
// RPC stacks jitter their backoff timers.
func (in *Injector) RetryJitter(step, from, to, attempt, spread int) int {
	if in == nil || spread <= 1 {
		return 0
	}
	u := in.draw(step, from, to, attempt+1<<16)
	return int(u * float64(spread))
}

// Stats returns the fault counts issued so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
