package fault

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/rng"
)

// This file re-aims the injector at HTTP: Transport is an http.RoundTripper
// that decides, per request, whether the "network" delivers, drops, delays,
// duplicates, or 5xx-fails the exchange. The replication layer in
// internal/serve/cluster routes every inter-replica call through it, which is
// what makes the chaos test tier's fault schedules seeded and reproducible.
//
// Determinism works the same way as on the dist paths: the outcome is a pure
// function of (seed, step, from, to, attempt), with step derived by hashing a
// stable per-request key (the caller's X-Asamap-Fault-Key header, or
// method+path when absent) so the draw is independent of the order in which
// concurrent requests hit the wire. Retries bump the attempt coordinate via
// the X-Asamap-Fault-Attempt header and therefore draw fresh outcomes, so a
// dropped request is not doomed to be dropped forever.

// Request headers the Transport reads to locate a request in the fault
// schedule. The peer client sets both; they are stripped before the request
// reaches the wire so the receiving server never sees them.
const (
	// HeaderFaultKey carries the stable identity of the logical request
	// (e.g. the detection cache key). Requests with the same key draw the
	// same outcome at the same attempt, regardless of wall-clock order.
	HeaderFaultKey = "X-Asamap-Fault-Key"
	// HeaderFaultAttempt carries the zero-based retry attempt.
	HeaderFaultAttempt = "X-Asamap-Fault-Attempt"
)

// TransportError is the connection-level failure the Transport synthesizes
// for a Drop outcome (and for a Duplicate whose body cannot be replayed).
type TransportError struct {
	Outcome Outcome
	Peer    int
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("fault: injected %s on path to peer %d", e.Outcome, e.Peer)
}

// Transport is a fault-injecting http.RoundTripper. A Transport with a nil
// injector is transparent. Transport is safe for concurrent use.
type Transport struct {
	// Inner performs the real exchange; nil means http.DefaultTransport.
	Inner http.RoundTripper
	// Inj decides outcomes; nil injects nothing.
	Inj *Injector
	// Clock times Delay outcomes; nil means the real clock.
	Clock clock.Clock
	// From and To are the injector coordinates of this path (sending and
	// receiving replica indices).
	From, To int
	// DelayFor is how long a Delay outcome stalls before delivering
	// (default 25ms).
	DelayFor time.Duration
}

// step derives the injector's step coordinate from the request's stable key.
// The top bit is cleared so the int stays non-negative on 32-bit platforms.
func (t *Transport) step(req *http.Request) int {
	key := req.Header.Get(HeaderFaultKey)
	if key == "" {
		key = req.Method + " " + req.URL.Path
	}
	return int(rng.HashString(key) >> 33)
}

// RoundTrip implements http.RoundTripper under the injected fault schedule.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if t.Inj == nil {
		return inner.RoundTrip(stripFaultHeaders(req))
	}
	attempt, _ := strconv.Atoi(req.Header.Get(HeaderFaultAttempt))
	outcome := t.Inj.Outcome(t.step(req), t.From, t.To, attempt)
	switch outcome {
	case Drop:
		closeRequestBody(req)
		return nil, &TransportError{Outcome: Drop, Peer: t.To}
	case Reply5xx:
		closeRequestBody(req)
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("fault: injected 5xx\n")),
			Request:    req,
		}, nil
	case Delay:
		clk := t.Clock
		if clk == nil {
			clk = clock.Real{}
		}
		d := t.DelayFor
		if d <= 0 {
			d = 25 * time.Millisecond
		}
		select {
		case <-clk.After(d):
		case <-req.Context().Done():
			closeRequestBody(req)
			return nil, req.Context().Err()
		}
		return inner.RoundTrip(stripFaultHeaders(req))
	case Duplicate:
		// Deliver twice, returning the second response. The receiver side is
		// idempotent by construction (content-addressed uploads, byte-
		// deterministic detects), so the duplicate costs only wire bytes. A
		// non-replayable streaming body cannot be sent twice; deliver once.
		if req.Body == nil || req.GetBody != nil {
			dup := req.Clone(req.Context())
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					closeRequestBody(req)
					return nil, err
				}
				dup.Body = body
			}
			if resp, err := inner.RoundTrip(stripFaultHeaders(dup)); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return inner.RoundTrip(stripFaultHeaders(req))
	default:
		return inner.RoundTrip(stripFaultHeaders(req))
	}
}

// stripFaultHeaders removes the schedule-coordinate headers before the
// request leaves the process; they are addressing for the injector, not
// protocol. The clone keeps the caller's request untouched for its own
// retry bookkeeping.
func stripFaultHeaders(req *http.Request) *http.Request {
	if req.Header.Get(HeaderFaultKey) == "" && req.Header.Get(HeaderFaultAttempt) == "" {
		return req
	}
	out := req.Clone(req.Context())
	out.Header.Del(HeaderFaultKey)
	out.Header.Del(HeaderFaultAttempt)
	return out
}

// closeRequestBody honors the RoundTripper contract: the transport owns the
// request body and must close it even when the exchange never happens.
func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
