package fault

import (
	"math"
	"testing"
)

func TestNilInjectorDeliversEverything(t *testing.T) {
	var in *Injector
	for step := 0; step < 10; step++ {
		if o := in.Outcome(step, 0, 1, 0); o != Deliver {
			t.Fatalf("nil injector returned %v", o)
		}
	}
	if in.CrashesAt(0, 0) {
		t.Fatal("nil injector crashed a rank")
	}
	if in.RetryJitter(0, 0, 1, 0, 4) != 0 {
		t.Fatal("nil injector jittered")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector counted faults: %+v", s)
	}
}

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	in, err := New(Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("disabled config produced a live injector")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{DropProb: 1.1},
		{DropProb: 0.6, DupProb: 0.5},
		{InjectCrash: true, CrashRank: -1},
		{InjectCrash: true, CrashStep: -1},
		{InjectCrash: true, CrashDownFor: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestOutcomeDeterministicAndOrderIndependent(t *testing.T) {
	cfg := Disabled()
	cfg.DropProb, cfg.DupProb, cfg.DelayProb = 0.2, 0.1, 0.1
	cfg.Seed = 42
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	// Same coordinates, queried in different orders, must agree.
	type coord struct{ step, from, to, attempt int }
	var coords []coord
	for step := 0; step < 8; step++ {
		for from := 0; from < 4; from++ {
			for to := 0; to < 4; to++ {
				coords = append(coords, coord{step, from, to, 0})
			}
		}
	}
	fwd := make([]Outcome, len(coords))
	for i, c := range coords {
		fwd[i] = a.Outcome(c.step, c.from, c.to, c.attempt)
	}
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		if o := b.Outcome(c.step, c.from, c.to, c.attempt); o != fwd[i] {
			t.Fatalf("coordinate %+v: %v then %v", c, fwd[i], o)
		}
	}
}

func TestOutcomeRatesRoughlyMatchProbabilities(t *testing.T) {
	cfg := Disabled()
	cfg.DropProb, cfg.DupProb, cfg.DelayProb = 0.3, 0.2, 0.1
	cfg.Seed = 7
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	counts := map[Outcome]int{}
	for i := 0; i < n; i++ {
		counts[in.Outcome(i, i%7, (i+1)%7, 0)]++
	}
	check := func(o Outcome, p float64) {
		got := float64(counts[o]) / float64(n)
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("%v rate %.3f, want ~%.2f", o, got, p)
		}
	}
	check(Drop, 0.3)
	check(Duplicate, 0.2)
	check(Delay, 0.1)
	check(Deliver, 0.4)
	st := in.Stats()
	if st.Drops == 0 || st.Duplicates == 0 || st.Delays == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Injector {
		cfg := Disabled()
		cfg.DropProb = 0.5
		cfg.Seed = seed
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(1), mk(2)
	same := 0
	total := 1000
	for i := 0; i < total; i++ {
		if a.Outcome(i, 0, 1, 0) == b.Outcome(i, 0, 1, 0) {
			same++
		}
	}
	if same == total {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestFixedScheduleOverridesDraw(t *testing.T) {
	cfg := Disabled()
	cfg.Schedule = []Event{
		{Step: 3, From: 1, To: 2, Outcome: Drop},
		{Step: 4, From: 0, To: -1, Outcome: Delay},
	}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o := in.Outcome(3, 1, 2, 0); o != Drop {
		t.Fatalf("scheduled drop not honored: %v", o)
	}
	// To == -1 matches every receiver.
	for to := 0; to < 5; to++ {
		if o := in.Outcome(4, 0, to, 0); o != Delay {
			t.Fatalf("wildcard delay not honored for to=%d: %v", to, o)
		}
	}
	// Other coordinates are unaffected (all probabilities zero).
	if o := in.Outcome(3, 2, 1, 0); o != Deliver {
		t.Fatalf("unscheduled message faulted: %v", o)
	}
	// Retransmissions of a scheduled drop are not re-dropped.
	if o := in.Outcome(3, 1, 2, 1); o != Deliver {
		t.Fatalf("retry of scheduled drop faulted: %v", o)
	}
}

func TestCrash(t *testing.T) {
	cfg := Disabled()
	cfg.InjectCrash = true
	cfg.CrashRank, cfg.CrashStep, cfg.CrashDownFor = 2, 5, 3
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.CrashesAt(2, 4) || in.CrashesAt(1, 5) {
		t.Fatal("crash at wrong coordinates")
	}
	if !in.CrashesAt(2, 5) {
		t.Fatal("scheduled crash missed")
	}
	if in.DownFor() != 3 {
		t.Fatalf("DownFor %d, want 3", in.DownFor())
	}
	if in.Stats().Crashes != 1 {
		t.Fatalf("crash not counted: %+v", in.Stats())
	}
}

func TestRetryJitterBounded(t *testing.T) {
	cfg := Disabled()
	cfg.DropProb = 0.5
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 6; attempt++ {
		j := in.RetryJitter(10, 0, 1, attempt, 4)
		if j < 0 || j >= 4 {
			t.Fatalf("jitter %d out of [0,4)", j)
		}
		if k := in.RetryJitter(10, 0, 1, attempt, 4); k != j {
			t.Fatal("jitter not deterministic")
		}
	}
	if in.RetryJitter(10, 0, 1, 0, 1) != 0 {
		t.Fatal("spread 1 must yield 0")
	}
}
