package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

// always returns an injector whose probability chain always draws outcome o.
func always(t *testing.T, o Outcome) *Injector {
	t.Helper()
	cfg := Config{Seed: 7}
	switch o {
	case Drop:
		cfg.DropProb = 1
	case Duplicate:
		cfg.DupProb = 1
	case Delay:
		cfg.DelayProb = 1
	case Reply5xx:
		cfg.FailProb = 1
	}
	inj, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inj
}

func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	tr := &Transport{Inj: always(t, Drop), To: 2}
	hc := &http.Client{Transport: tr}
	_, err := hc.Get(srv.URL + "/x")
	if err == nil {
		t.Fatal("expected injected drop error, got nil")
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Outcome != Drop || te.Peer != 2 {
		t.Fatalf("want TransportError{Drop, peer 2} in chain, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
}

func TestTransportReply5xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{Inj: always(t, Reply5xx)}}
	resp, err := hc.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want synthetic 503, got %d", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("5xx-failed request reached the server %d times", hits.Load())
	}
}

func TestTransportDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	var bodies sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies.Store(hits.Add(1), string(b))
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &Transport{Inj: always(t, Duplicate)}}
	resp, err := hc.Post(srv.URL+"/x", "text/plain", bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("duplicated request reached the server %d times, want 2", hits.Load())
	}
	for _, k := range []int64{1, 2} {
		if v, _ := bodies.Load(k); v != "payload" {
			t.Fatalf("delivery %d carried body %q, want %q", k, v, "payload")
		}
	}
}

func TestTransportDelayWaitsOnClock(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(0, 0))
	hc := &http.Client{Transport: &Transport{Inj: always(t, Delay), Clock: fake, DelayFor: time.Second}}

	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := hc.Get(srv.URL + "/x")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// The request must be parked on the fake clock, not completed.
	for fake.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("request completed before the clock advanced: %v", err)
	default:
	}
	fake.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	wg.Wait()
}

// TestTransportKeyedDeterminism pins the property the chaos tier relies on:
// the outcome of a keyed request is a function of (seed, key, attempt), not
// of arrival order.
func TestTransportKeyedDeterminism(t *testing.T) {
	inj1, err := New(Config{Seed: 42, DropProb: 0.3, DupProb: 0.1, DelayProb: 0.1, FailProb: 0.2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inj2, err := New(Config{Seed: 42, DropProb: 0.3, DupProb: 0.1, DelayProb: 0.1, FailProb: 0.2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr1 := &Transport{Inj: inj1, From: 0, To: 1}
	tr2 := &Transport{Inj: inj2, From: 0, To: 1}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	var seq1, seq2 []Outcome
	for pass := 0; pass < 2; pass++ {
		for _, k := range keys {
			req, _ := http.NewRequest(http.MethodGet, "http://peer/v1/x", nil)
			req.Header.Set(HeaderFaultKey, k)
			seq1 = append(seq1, inj1.Outcome(tr1.step(req), 0, 1, 0))
		}
	}
	// Second injector sees the keys in reverse order; same outcomes per key.
	for pass := 0; pass < 2; pass++ {
		for i := len(keys) - 1; i >= 0; i-- {
			req, _ := http.NewRequest(http.MethodGet, "http://peer/v1/x", nil)
			req.Header.Set(HeaderFaultKey, keys[i])
			seq2 = append(seq2, inj2.Outcome(tr2.step(req), 0, 1, 0))
		}
	}
	for i, k := range keys {
		if a, b := seq1[i], seq2[len(keys)-1-i]; a != b {
			t.Fatalf("key %s drew %s then %s across orderings", k, a, b)
		}
	}
	if inj1.Stats() != inj2.Stats() {
		t.Fatalf("stats diverged across orderings: %+v vs %+v", inj1.Stats(), inj2.Stats())
	}
}

// TestTransportStripsFaultHeaders ensures schedule coordinates never reach
// the receiving server.
func TestTransportStripsFaultHeaders(t *testing.T) {
	var gotKey, gotAttempt atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.Header.Get(HeaderFaultKey))
		gotAttempt.Store(r.Header.Get(HeaderFaultAttempt))
	}))
	defer srv.Close()

	inj, err := New(Config{Seed: 1, DelayProb: 0}) // disabled → nil injector
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hc := &http.Client{Transport: &Transport{Inj: inj}}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	req.Header.Set(HeaderFaultKey, "key")
	req.Header.Set(HeaderFaultAttempt, "3")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if gotKey.Load() != "" || gotAttempt.Load() != "" {
		t.Fatalf("fault headers leaked to the server: key=%q attempt=%q", gotKey.Load(), gotAttempt.Load())
	}
}
