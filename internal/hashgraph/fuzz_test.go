package hashgraph

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/accum"
)

// FuzzHashGraphOracle: any accumulate sequence against any (tiny) table must
// match the map-accumulator oracle after resolve, never panic, survive a
// mid-stream Lookup (which forces a resolve-then-reaccumulate interleaving),
// and come back empty after Reset.
func FuzzHashGraphOracle(f *testing.F) {
	// Duplicate-heavy stream: every pair folds into one bin entry.
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5}, uint8(1))
	// Single-bin collision stream: with few bins, stride-by-bins keys all
	// land in bin 0 and exercise the in-bin duplicate scan.
	f.Add([]byte{0, 4, 8, 12, 16, 20, 24, 28}, uint8(4))
	f.Add([]byte{1, 2, 3, 1, 2, 3}, uint8(2))
	f.Add([]byte{0}, uint8(0))
	f.Add([]byte{255, 254, 253, 252, 251}, uint8(7))
	f.Fuzz(func(t *testing.T, keys []byte, hintRaw uint8) {
		h := New(int(hintRaw) % 16) // include hint<=0 to cover the default path
		oracle := accum.NewMap(4)
		for i, k := range keys {
			key := uint32(k % 64)
			val := float64(i%7) + 0.5
			h.Accumulate(key, val)
			oracle.Accumulate(key, val)
			if i == len(keys)/2 {
				// Mid-stream read: forces a resolve with more pairs to come,
				// exercising the session hit/miss delta accounting.
				hv, hok := h.Lookup(key)
				ov, ook := oracle.Lookup(key)
				if hok != ook || math.Abs(hv-ov) > 1e-9 {
					t.Fatalf("mid-stream Lookup(%d) = %g,%v; oracle %g,%v", key, hv, hok, ov, ook)
				}
			}
		}
		got := h.Gather(nil)
		want := oracle.Gather(nil)
		if len(got) != len(want) {
			t.Fatalf("%d keys gathered, oracle has %d", len(got), len(want))
		}
		sums := make(map[uint32]float64, len(want))
		for _, kv := range want {
			sums[kv.Key] = kv.Value
		}
		for _, kv := range got {
			ov, ok := sums[kv.Key]
			if !ok {
				t.Fatalf("phantom key %d", kv.Key)
			}
			if math.Abs(kv.Value-ov) > 1e-9 {
				t.Fatalf("key %d: %g vs oracle %g", kv.Key, kv.Value, ov)
			}
		}
		st := h.Stats()
		if st.ChainHops != 0 || st.Rehashes != 0 {
			t.Fatalf("probe-free contract violated: %+v", st)
		}
		if st.Hits+st.Misses != st.Accumulates {
			t.Fatalf("hit/miss accounting off: %+v", st)
		}
		h.Reset()
		if out := h.Gather([]accum.KV{}); len(out) != 0 {
			t.Fatalf("reset table still holds %v", out)
		}
	})
}
