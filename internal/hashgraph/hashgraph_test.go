package hashgraph

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/rng"
)

func TestBasicAccumulateGather(t *testing.T) {
	h := New(8)
	h.Accumulate(2, 1.5)
	h.Accumulate(1, 1.0)
	h.Accumulate(2, 0.5)
	got := h.Gather(nil)
	if len(got) != 2 {
		t.Fatalf("gathered %v", got)
	}
	sum := map[uint32]float64{}
	for _, kv := range got {
		sum[kv.Key] += kv.Value
	}
	if sum[1] != 1.0 || sum[2] != 2.0 {
		t.Fatalf("merge wrong: %v", got)
	}
	st := h.Stats()
	if st.Accumulates != 3 || st.Hits != 1 || st.Misses != 2 || st.Inserts != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.BinnedKV != 3 || st.ScatteredKV != 3 || st.BinMergedKV != 1 {
		t.Fatalf("resolve stats %+v", st)
	}
	if st.ChainHops != 0 || st.Rehashes != 0 {
		t.Fatalf("probe-free table reported chain/rehash events: %+v", st)
	}
	if h.Name() != "hashgraph" {
		t.Fatalf("name %q", h.Name())
	}
}

func TestLookup(t *testing.T) {
	h := New(4)
	h.Accumulate(7, 2.0)
	h.Accumulate(7, 3.0)
	h.Accumulate(9, 1.0)
	if v, ok := h.Lookup(7); !ok || v != 5.0 {
		t.Fatalf("Lookup(7) = %v, %v", v, ok)
	}
	if _, ok := h.Lookup(8); ok {
		t.Fatal("Lookup(8) found a phantom key")
	}
	// Accumulate after a resolve must re-resolve on the next read.
	h.Accumulate(8, 4.0)
	if v, ok := h.Lookup(8); !ok || v != 4.0 {
		t.Fatalf("Lookup(8) after re-accumulate = %v, %v", v, ok)
	}
	if v, ok := h.Lookup(7); !ok || v != 5.0 {
		t.Fatalf("Lookup(7) after re-resolve = %v, %v", v, ok)
	}
	st := h.Stats()
	// Hits/Misses must not double count across the two resolves.
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("re-resolve double-counted hits/misses: %+v", st)
	}
}

func TestResetReuse(t *testing.T) {
	h := New(4)
	for session := 0; session < 10; session++ {
		for i := 0; i < 50; i++ {
			h.Accumulate(uint32(i%13), 1.0)
		}
		got := h.Gather(nil)
		if len(got) != 13 {
			t.Fatalf("session %d: %d keys, want 13", session, len(got))
		}
		h.Reset()
		if out := h.Gather(nil); len(out) != 0 {
			t.Fatalf("session %d: reset table still holds %v", session, out)
		}
		if _, ok := h.Lookup(1); ok {
			t.Fatalf("session %d: reset table still resolves keys", session)
		}
	}
}

// TestSteadyStateAllocationFree: once buffers have grown to the session
// shape, accumulate → gather → reset cycles must not allocate — the
// contract that keeps the kernel hot loop allocation-free.
func TestSteadyStateAllocationFree(t *testing.T) {
	h := New(1) // deliberately undersized: growth must still converge
	dst := make([]accum.KV, 0, 256)
	session := func() {
		for i := 0; i < 200; i++ {
			h.Accumulate(uint32(i%37), 0.5)
		}
		dst = h.Gather(dst[:0])
		h.Reset()
	}
	for i := 0; i < 5; i++ {
		session() // warm up: grow buf, kv, and bin arrays
	}
	if avg := testing.AllocsPerRun(20, session); avg != 0 {
		t.Fatalf("steady-state session allocates %.1f times", avg)
	}
}

// TestGatherOrderDeterministic: the gather order must be a pure function of
// the accumulate sequence, stable across instances and repeats.
func TestGatherOrderDeterministic(t *testing.T) {
	r := rng.New(7)
	keys := make([]uint32, 500)
	for i := range keys {
		keys[i] = uint32(r.Uint64() % 97)
	}
	run := func() []accum.KV {
		h := New(16)
		for i, k := range keys {
			h.Accumulate(k, float64(i%5)+0.25)
		}
		return h.Gather(nil)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gather order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestOracleLargeSessions drives sessions past several bin-count growth
// steps and checks exact agreement with the map oracle.
func TestOracleLargeSessions(t *testing.T) {
	r := rng.New(42)
	h := New(2)
	for _, n := range []int{1, 3, 17, 100, 1000, 5000} {
		oracle := map[uint32]float64{}
		for i := 0; i < n; i++ {
			k := uint32(r.Uint64() % uint64(n/2+1))
			v := float64(i%11) + 0.125
			h.Accumulate(k, v)
			oracle[k] += v
		}
		got := h.Gather(nil)
		if len(got) != len(oracle) {
			t.Fatalf("n=%d: %d keys gathered, oracle has %d", n, len(got), len(oracle))
		}
		for _, kv := range got {
			if math.Abs(kv.Value-oracle[kv.Key]) > 1e-9*math.Abs(oracle[kv.Key])+1e-12 {
				t.Fatalf("n=%d key %d: %g vs oracle %g", n, kv.Key, kv.Value, oracle[kv.Key])
			}
		}
		h.Reset()
	}
}

func TestStatsBookkeeping(t *testing.T) {
	h := New(8)
	for i := 0; i < 30; i++ {
		h.Accumulate(uint32(i%10), 1)
	}
	h.Gather(nil)
	st := h.Stats()
	if st.Hits+st.Misses != st.Accumulates {
		t.Fatalf("hits %d + misses %d != accumulates %d", st.Hits, st.Misses, st.Accumulates)
	}
	if st.BinnedKV != st.ScatteredKV {
		t.Fatalf("pass-1 binned %d != pass-2 scattered %d", st.BinnedKV, st.ScatteredKV)
	}
	if st.BinMergedKV != st.Hits {
		t.Fatalf("merged duplicates %d != hits %d", st.BinMergedKV, st.Hits)
	}
	if st.GatheredKV != st.Misses {
		t.Fatalf("gathered %d != distinct keys %d", st.GatheredKV, st.Misses)
	}
}

func TestLenAndBins(t *testing.T) {
	h := New(4)
	if h.Len() != 0 {
		t.Fatalf("empty Len = %d", h.Len())
	}
	for i := 0; i < 100; i++ {
		h.Accumulate(uint32(i), 1)
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d, want 100", h.Len())
	}
	if h.Bins() < 100/targetBinSize {
		t.Fatalf("bins %d too few for 100 pairs", h.Bins())
	}
}
