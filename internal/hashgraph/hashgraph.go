// Package hashgraph implements a probe-free sparse accumulator modeled on
// HashGraph (Green, "HashGraph — Scalable Hash Tables Using A Sparse Graph
// Data Structure"): a third point in the design space between the chained
// software hash table (package hashtab) and the ASA content-addressable
// memory (package asa).
//
// Where the chained table pays a data-dependent probe — pointer-chasing
// collision chains with hard-to-predict branches — on *every* Accumulate,
// HashGraph defers all collision handling to session end. Accumulate is a
// plain append into a session buffer; when the kernel asks for the merged
// pairs, the buffer is resolved in two branch-light passes borrowed from
// counting sort:
//
//  1. count pass: hash every buffered key and count pairs per hash bin;
//  2. an exclusive prefix sum turns the counts into contiguous bin offsets
//     (the "sparse graph" CSR layout of the paper);
//  3. scatter pass: re-hash and copy every pair into its bin's slice;
//  4. merge pass: fold duplicate keys within each bin. Bins are a few cache
//     lines wide, so the merge scans cache-resident data.
//
// Every pass streams sequentially over dense arrays — no chains, no probing,
// and no rehash/growth churn, which is why the package reports zero
// ChainHops and Rehashes by construction. All buffers are retained across
// Reset, so the steady-state hot loop is allocation-free.
package hashgraph

import "github.com/asamap/asamap/internal/accum"

// targetBinSize is the average number of buffered pairs per hash bin the
// resolve pass aims for. A handful of pairs keeps each bin inside one or two
// cache lines (the paper's cache-resident bin argument) while keeping the
// count/prefix-sum arrays small relative to the buffer.
const targetBinSize = 8

// minBins bounds the bin count from below so tiny sessions still spread
// across a few bins instead of degenerating into one linear list.
const minBins = 4

// hash32 is the same finalizing mixer the ASA model uses; identity hashing
// (as in package hashtab) would let consecutive module IDs fill bins
// unevenly under the counting layout.
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Table is one probe-free accumulator. Like every accum.Accumulator in this
// repository it is a single-goroutine object: the parallel kernel gives each
// worker its own Table.
type Table struct {
	buf []accum.KV // session buffer of raw (key, value) appends

	// Resolved state, valid when !dirty: kv[binStart[b]:binStart[b]+binLen[b]]
	// holds bin b's merged pairs.
	kv       []accum.KV
	binStart []int32
	binLen   []int32
	cursor   []int32 // scatter cursors, scratch for resolve
	nbins    int
	mask     uint32
	dirty    bool

	// Hits/Misses are discovered at resolve time (a duplicate key is a hit,
	// a first occurrence a miss). Sessions may resolve more than once when
	// lookups interleave with accumulates, so the per-session totals seen so
	// far are tracked and only the delta is folded into stats.
	sessionHits   uint64
	sessionMisses uint64

	stats accum.Stats
}

// New returns a Table whose buffers are pre-sized for sessions of about hint
// pairs (e.g. the graph's maximum degree), so the steady state reaches
// allocation-free without growth steps. Any hint is only a hint: buffers
// grow as needed.
func New(hint int) *Table {
	if hint < 1 {
		hint = 1
	}
	t := &Table{
		buf: make([]accum.KV, 0, hint),
		kv:  make([]accum.KV, 0, hint),
	}
	t.sizeBins(binsFor(hint))
	return t
}

// binsFor returns the power-of-two bin count for a session of n pairs.
func binsFor(n int) int {
	bins := minBins
	for bins*targetBinSize < n {
		bins <<= 1
	}
	return bins
}

// sizeBins (re)allocates the per-bin arrays when the bin count grows.
func (t *Table) sizeBins(bins int) {
	if bins <= cap(t.binStart) {
		t.binStart = t.binStart[:bins]
		t.binLen = t.binLen[:bins]
		t.cursor = t.cursor[:bins]
	} else {
		t.binStart = make([]int32, bins)
		t.binLen = make([]int32, bins)
		t.cursor = make([]int32, bins)
	}
	t.nbins = bins
	t.mask = uint32(bins - 1)
}

// Accumulate implements accum.Accumulator. It is the probe-free half of the
// design: a bounds check and a sequential store, no table touch at all.
//
//asalint:hotroot probe-free accumulate: one buffered write per arc
func (t *Table) Accumulate(key uint32, value float64) {
	t.stats.Accumulates++
	t.buf = append(t.buf, accum.KV{Key: key, Value: value})
	t.dirty = true
}

// resolve builds the merged bin layout from the session buffer: count,
// prefix-sum, scatter, in-bin merge. It runs at most once per mutation
// (Lookup and Gather share the resolved state).
func (t *Table) resolve() {
	if !t.dirty {
		return
	}
	t.dirty = false
	t.sizeBins(binsFor(len(t.buf)))

	// Pass 1: count pairs per bin.
	counts := t.cursor // reuse the scatter-cursor array for the raw counts
	for i := range counts {
		counts[i] = 0
	}
	for i := range t.buf {
		counts[hash32(t.buf[i].Key)&t.mask]++
	}
	t.stats.BinnedKV += uint64(len(t.buf))

	// Exclusive prefix sum: contiguous bin offsets (the CSR row pointers of
	// the paper's sparse-graph layout). counts becomes the scatter cursor.
	var sum int32
	for b := range counts {
		t.binStart[b] = sum
		sum += counts[b]
		counts[b] = t.binStart[b]
	}

	// Pass 2: scatter every pair into its bin slot. Within a bin, pairs land
	// in buffer order, which keeps the final layout a pure function of the
	// accumulate sequence — the determinism contract needs no sorting.
	if cap(t.kv) < len(t.buf) {
		t.kv = make([]accum.KV, len(t.buf))
	} else {
		t.kv = t.kv[:len(t.buf)]
	}
	kv := t.kv
	for i := range t.buf {
		b := hash32(t.buf[i].Key) & t.mask
		kv[counts[b]] = t.buf[i]
		counts[b]++
	}
	t.stats.ScatteredKV += uint64(len(t.buf))

	// Pass 3: fold duplicates within each (cache-resident) bin.
	var hits, misses uint64
	for b := 0; b < t.nbins; b++ {
		lo := t.binStart[b]
		hi := counts[b]
		n := lo // end of the merged prefix
	scan:
		for i := lo; i < hi; i++ {
			for j := lo; j < n; j++ {
				if kv[j].Key == kv[i].Key {
					kv[j].Value += kv[i].Value
					hits++
					continue scan
				}
			}
			kv[n] = kv[i]
			n++
			misses++
		}
		t.binLen[b] = n - lo
	}
	t.stats.BinMergedKV += hits - t.sessionHits
	t.stats.Hits += hits - t.sessionHits
	t.stats.Misses += misses - t.sessionMisses
	t.stats.Inserts += misses - t.sessionMisses
	t.sessionHits, t.sessionMisses = hits, misses
}

// Lookup implements accum.Accumulator: resolve if needed, then scan the
// key's bin — a short contiguous run, not a collision chain.
func (t *Table) Lookup(key uint32) (float64, bool) {
	t.stats.Lookups++
	t.resolve()
	b := hash32(key) & t.mask
	lo := t.binStart[b]
	for i := lo; i < lo+t.binLen[b]; i++ {
		if t.kv[i].Key == key {
			return t.kv[i].Value, true
		}
	}
	return 0, false
}

// Gather implements accum.Accumulator: resolve if needed, then append every
// bin's merged prefix in bin order. The output order is a deterministic
// function of the accumulate sequence alone.
//
//asalint:hotroot steady-state resolve+copy-out, pinned alloc-free by TestAllocsSteadyState
func (t *Table) Gather(dst []accum.KV) []accum.KV {
	t.stats.Gathers++
	t.resolve()
	start := len(dst)
	for b := 0; b < t.nbins; b++ {
		lo := t.binStart[b]
		dst = append(dst, t.kv[lo:lo+t.binLen[b]]...)
	}
	t.stats.GatheredKV += uint64(len(dst) - start)
	return dst
}

// Len returns the number of distinct keys currently held (resolving first).
func (t *Table) Len() int {
	t.resolve()
	n := 0
	for b := 0; b < t.nbins; b++ {
		n += int(t.binLen[b])
	}
	return n
}

// Bins returns the current bin count (for tests and reports).
func (t *Table) Bins() int { return t.nbins }

// Reset implements accum.Accumulator. All buffers keep their capacity; only
// lengths and the resolved layout are cleared, so steady-state sessions
// allocate nothing.
func (t *Table) Reset() {
	t.stats.Resets++
	t.buf = t.buf[:0]
	t.dirty = false
	t.sessionHits, t.sessionMisses = 0, 0
	for b := range t.binLen {
		t.binLen[b] = 0
	}
}

// Stats implements accum.Accumulator.
func (t *Table) Stats() accum.Stats { return t.stats }

// Name implements accum.Accumulator.
func (t *Table) Name() string { return "hashgraph" }

var _ accum.Accumulator = (*Table)(nil)
