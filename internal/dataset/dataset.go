// Package dataset is the registry of the paper's Table I networks. The SNAP
// originals (Amazon, DBLP, YouTube, soc-Pokec, LiveJournal, Orkut) are not
// redistributable and unavailable offline, so each entry generates a
// synthetic Chung–Lu replica that preserves the two properties every result
// in the paper depends on: the vertex/edge scale (optionally divided by a
// scale factor so experiments run on laptop budgets) and the power-law degree
// distribution (Figures 4 and 5, the CAM-capacity argument). DESIGN.md
// records this substitution.
package dataset

import (
	"fmt"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// Spec describes one network from the paper's Table I.
type Spec struct {
	Name          string
	PaperVertices int     // vertex count reported in Table I
	PaperEdges    int     // edge count reported in Table I
	DegExponent   float64 // power-law exponent of the replica's degree sequence
	DefaultScale  int     // divisor applied to the vertex count by default
	DegComp       float64 // requested-degree compensation for LFR stub losses
}

// Registry lists the six networks of Table I in paper order. Exponents are
// typical published estimates for each network family; what matters for the
// reproduction is heavy-tailed sparsity, not the third decimal.
var Registry = []Spec{
	{Name: "Amazon", PaperVertices: 334863, PaperEdges: 925872, DegExponent: 2.9, DefaultScale: 8, DegComp: 1.02},
	{Name: "DBLP", PaperVertices: 317080, PaperEdges: 1049866, DegExponent: 2.8, DefaultScale: 8, DegComp: 1.20},
	{Name: "YouTube", PaperVertices: 1134890, PaperEdges: 2987624, DegExponent: 2.2, DefaultScale: 16, DegComp: 1.05},
	{Name: "soc-Pokec", PaperVertices: 1632803, PaperEdges: 30622564, DegExponent: 2.1, DefaultScale: 32, DegComp: 1.34},
	{Name: "LiveJournal", PaperVertices: 3997962, PaperEdges: 34681189, DegExponent: 2.3, DefaultScale: 64, DegComp: 1.29},
	{Name: "Orkut", PaperVertices: 3072441, PaperEdges: 117185083, DegExponent: 2.0, DefaultScale: 64, DegComp: 1.40},
}

// ByName returns the Spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown network %q", name)
}

// AvgDegree returns the network's average degree 2E/V as reported in Table I.
func (s Spec) AvgDegree() float64 {
	return 2 * float64(s.PaperEdges) / float64(s.PaperVertices)
}

// Vertices returns the replica vertex count at the given scale divisor
// (scale <= 0 uses DefaultScale; scale 1 is full paper size).
func (s Spec) Vertices(scale int) int {
	if scale <= 0 {
		scale = s.DefaultScale
	}
	n := s.PaperVertices / scale
	if n < 100 {
		n = 100
	}
	return n
}

// Generate builds the synthetic replica at the given scale divisor with the
// given seed. It returns GenerateWithTruth's graph, discarding the planted
// membership.
func (s Spec) Generate(scale int, seed uint64) (*graph.Graph, error) {
	g, _, err := s.GenerateWithTruth(scale, seed)
	return g, err
}

// GenerateWithTruth builds the synthetic replica: an undirected LFR-style
// graph whose degree sequence is a power law with the spec's exponent and
// the paper's average degree, and whose planted communities give the replica
// the modular structure real social networks have (a pure Chung–Lu graph
// would be structureless, which distorts how the FindBestCommunity kernel
// converges). The planted membership is returned for quality checks.
func (s Spec) GenerateWithTruth(scale int, seed uint64) (*graph.Graph, []uint32, error) {
	n := s.Vertices(scale)
	r := rng.New(seed ^ hashName(s.Name))
	maxDeg := n / 4
	if maxDeg < 16 {
		maxDeg = 16
	}
	maxComm := n / 20
	if maxComm > 1000 {
		maxComm = 1000
	}
	if maxComm < 25 {
		maxComm = 25
	}
	// LFR stub matching rejects self-loops and duplicates, which costs
	// heavy-tailed sequences a sizeable fraction of their requested degree
	// (hub stubs collide), and the loss is a non-linear function of the
	// exponent, scale, and degree bounds. Compensate adaptively: regenerate
	// with a corrected request until the realized average degree lands within
	// 8% of Table I's, up to three attempts. DegComp seeds the first attempt.
	target := s.AvgDegree()
	comp := s.DegComp
	if comp <= 0 {
		comp = 1
	}
	var (
		g       *graph.Graph
		planted []uint32
		err     error
	)
	for attempt := 0; attempt < 3; attempt++ {
		p := gen.LFRParams{
			N:         n,
			AvgDegree: target * comp,
			MaxDegree: maxDeg,
			DegExp:    s.DegExponent,
			CommExp:   1.5,
			MinComm:   20,
			MaxComm:   maxComm,
			Mu:        0.3,
		}
		g, planted, err = gen.LFR(p, r)
		if err != nil {
			return nil, nil, err
		}
		realized := float64(g.M()) / float64(g.N())
		ratio := realized / target
		if ratio > 0.92 && ratio < 1.08 {
			break
		}
		comp *= target / realized
		if comp < 0.5 {
			comp = 0.5
		}
		if comp > 3 {
			comp = 3
		}
	}
	return g, planted, nil
}

// GenerateChungLu builds the structureless Chung–Lu variant of the replica
// (same scale and degree law, no planted communities). Useful as a null
// model in experiments.
func (s Spec) GenerateChungLu(scale int, seed uint64) (*graph.Graph, error) {
	n := s.Vertices(scale)
	r := rng.New(seed ^ hashName(s.Name))
	maxDeg := n / 4
	if maxDeg < 16 {
		maxDeg = 16
	}
	degrees := gen.DegreeSequenceWithMean(n, s.AvgDegree(), maxDeg, s.DegExponent, r)
	return gen.ChungLu(degrees, r)
}

// hashName derives a stable per-network seed perturbation so two networks
// generated with the same user seed differ.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// CAMCoverage returns, for each CAM capacity in entries, the fraction of
// vertices whose neighbor list fits without overflow — the paper's Figure 5.
// A vertex fits when its degree is at most the entry count.
func CAMCoverage(g *graph.Graph, entryCounts []int) []float64 {
	return g.DegreeCDF(entryCounts)
}

// EntriesForBytes converts CAM byte sizes to entry counts at entryBytes per
// entry (the x-axis conversion used in Figure 5).
func EntriesForBytes(byteSizes []int, entryBytes int) []int {
	out := make([]int, len(byteSizes))
	for i, b := range byteSizes {
		out[i] = b / entryBytes
	}
	return out
}
