package dataset

import (
	"testing"
)

func TestRegistryMatchesTableI(t *testing.T) {
	// Table I of the paper.
	want := map[string][2]int{
		"Amazon":      {334863, 925872},
		"DBLP":        {317080, 1049866},
		"YouTube":     {1134890, 2987624},
		"soc-Pokec":   {1632803, 30622564},
		"LiveJournal": {3997962, 34681189},
		"Orkut":       {3072441, 117185083},
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d networks, want %d", len(Registry), len(want))
	}
	for _, s := range Registry {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected network %q", s.Name)
		}
		if s.PaperVertices != w[0] || s.PaperEdges != w[1] {
			t.Fatalf("%s: %d/%d, want %d/%d", s.Name, s.PaperVertices, s.PaperEdges, w[0], w[1])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Orkut")
	if err != nil {
		t.Fatal(err)
	}
	if s.PaperEdges != 117185083 {
		t.Fatal("wrong spec returned")
	}
	if _, err := ByName("Friendster"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestGenerateReplicaShape(t *testing.T) {
	s, _ := ByName("DBLP")
	g, err := s.Generate(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := s.Vertices(32)
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	// Average degree within a factor of the paper's.
	avg := float64(g.M()) / float64(g.N())
	if avg < s.AvgDegree()*0.5 || avg > s.AvgDegree()*1.6 {
		t.Fatalf("replica avg degree %.2f, paper %.2f", avg, s.AvgDegree())
	}
	// Power law: hubs exist, most vertices small.
	if g.MaxOutDegree() < 3*int(s.AvgDegree()) {
		t.Fatalf("no hubs: max degree %d", g.MaxOutDegree())
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	s, _ := ByName("Amazon")
	g1, err := s.Generate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Generate(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != g2.M() {
		t.Fatal("same seed, different replica")
	}
	g3, err := s.Generate(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() == g1.M() && g3.TotalWeight() == g1.TotalWeight() {
		t.Log("warning: different seeds produced identical arc count (possible but unlikely)")
	}
}

func TestNetworksDifferUnderSameSeed(t *testing.T) {
	a, _ := ByName("Amazon")
	d, _ := ByName("DBLP")
	ga, err := a.Generate(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := d.Generate(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ga.N() == gd.N() && ga.M() == gd.M() {
		t.Fatal("per-network seed perturbation not working")
	}
}

func TestVerticesClampAndDefault(t *testing.T) {
	s, _ := ByName("Amazon")
	if s.Vertices(0) != s.PaperVertices/s.DefaultScale {
		t.Fatal("default scale not applied")
	}
	if s.Vertices(1<<30) != 100 {
		t.Fatal("tiny replica not clamped to 100 vertices")
	}
}

func TestCAMCoverageFig5Shape(t *testing.T) {
	// The paper's Figure 5: 1KB CAM (64 entries at 16B) covers >82% of
	// vertices, 8KB (512 entries) covers >99%.
	for _, name := range []string{"YouTube", "soc-Pokec", "LiveJournal"} {
		s, _ := ByName(name)
		g, err := s.Generate(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		entries := EntriesForBytes([]int{1024, 8192}, 16)
		cov := CAMCoverage(g, entries)
		if cov[0] < 0.82 {
			t.Fatalf("%s: 1KB CAM covers %.1f%%, paper reports >82%%", name, cov[0]*100)
		}
		if cov[1] < 0.99 {
			t.Fatalf("%s: 8KB CAM covers %.2f%%, paper reports >99%%", name, cov[1]*100)
		}
	}
}

func TestEntriesForBytes(t *testing.T) {
	got := EntriesForBytes([]int{1024, 2048, 8192}, 16)
	want := []int{64, 128, 512}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EntriesForBytes = %v", got)
		}
	}
}
