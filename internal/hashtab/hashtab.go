// Package hashtab implements the paper's Baseline: an explicit
// separate-chaining hash table modeled on libstdc++'s std::unordered_map,
// which is what HyPC-Map uses for the outFlowToModules / inFlowFromModules
// tables in Algorithm 1. Go's builtin map hides its internals, so this
// explicit table exists to (a) reproduce the probe/chain behaviour that the
// paper identifies as the bottleneck — pointer-chasing collision chains,
// data-dependent branches, rehashing — and (b) count those events so the
// perf package can model the resulting instructions, branch mispredictions,
// and CPI.
//
// Layout choices copied from libstdc++: identity hash for integer keys,
// modulo a prime bucket count, max load factor 1.0, growth to the next prime
// at least twice the size.
package hashtab

import "github.com/asamap/asamap/internal/accum"

// primes is the libstdc++-style growth schedule for bucket counts.
var primes = []uint32{
	13, 29, 59, 127, 257, 541, 1109, 2357, 5087, 10273, 20753, 42043,
	85229, 172933, 351061, 712697, 1447153, 2938679,
}

func nextPrime(atLeast uint32) uint32 {
	for _, p := range primes {
		if p >= atLeast {
			return p
		}
	}
	return primes[len(primes)-1]
}

type entry struct {
	key   uint32
	next  int32 // index of next entry in chain, -1 terminates
	value float64
}

// Table is a separate-chaining hash accumulator. It is not safe for
// concurrent use; the parallel kernel gives each worker its own Table.
type Table struct {
	buckets []int32 // head entry index per bucket, -1 empty
	entries []entry
	stats   accum.Stats
	trace   func(addr uint64) // optional memory-address sink (cachesim)
}

// Virtual base addresses of the table's arrays for address-trace generation.
// The values only need to be distinct and stable; the cache simulator cares
// about line and set indices, not absolute placement.
const (
	bucketArrayBase = 0x1000_0000
	entryArrayBase  = 0x2000_0000
	bucketStride    = 4  // int32 head per bucket
	entryStride     = 16 // key + next + padded value
)

// SetTracer installs a memory-address callback invoked for every bucket and
// chain-entry touch. Pass nil to disable. Used by the cache-simulation
// experiment to measure the table's real miss behaviour; adds one nil check
// per touch otherwise.
func (t *Table) SetTracer(fn func(addr uint64)) { t.trace = fn }

func (t *Table) touchBucket(b uint32) {
	if t.trace != nil {
		t.trace(bucketArrayBase + uint64(b)*bucketStride)
	}
}

func (t *Table) touchEntry(i int32) {
	if t.trace != nil {
		t.trace(entryArrayBase + uint64(i)*entryStride)
	}
}

// New returns a Table with the smallest bucket count that can hold hint
// entries without rehashing.
func New(hint int) *Table {
	n := nextPrime(uint32(max(hint, 1)))
	t := &Table{buckets: make([]int32, n)}
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	if hint > 0 {
		t.entries = make([]entry, 0, hint)
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bucketOf applies the unordered_map scheme: identity hash, modulo prime.
func (t *Table) bucketOf(key uint32) uint32 { return key % uint32(len(t.buckets)) }

// Accumulate implements accum.Accumulator: find-or-insert key and add value.
// This mirrors lines 6–11 of the paper's Algorithm 1 (count() followed by
// operator[], fused into a single probe here as any real implementation
// does).
func (t *Table) Accumulate(key uint32, value float64) {
	t.stats.Accumulates++
	b := t.bucketOf(key)
	t.touchBucket(b)
	for i := t.buckets[b]; i >= 0; i = t.entries[i].next {
		t.touchEntry(i)
		if t.entries[i].key == key {
			t.stats.Hits++
			t.entries[i].value += value
			return
		}
		t.stats.ChainHops++
	}
	t.stats.Misses++
	t.insert(key, value)
}

// Lookup implements accum.Accumulator: a read-only probe that walks the
// collision chain exactly like Accumulate but never inserts. This is the
// inFlowFromModules[newModId] fetch in lines 16–19 of Algorithm 1.
func (t *Table) Lookup(key uint32) (float64, bool) {
	t.stats.Lookups++
	b := t.bucketOf(key)
	t.touchBucket(b)
	for i := t.buckets[b]; i >= 0; i = t.entries[i].next {
		t.touchEntry(i)
		if t.entries[i].key == key {
			return t.entries[i].value, true
		}
		t.stats.ChainHops++
	}
	return 0, false
}

func (t *Table) insert(key uint32, value float64) {
	if len(t.entries)+1 > len(t.buckets) {
		t.rehash()
	}
	b := t.bucketOf(key)
	t.entries = append(t.entries, entry{key: key, value: value, next: t.buckets[b]})
	t.buckets[b] = int32(len(t.entries) - 1)
	t.touchBucket(b)
	t.touchEntry(int32(len(t.entries) - 1))
	t.stats.Inserts++
}

// rehash grows the bucket array to the next prime at least twice the current
// size and relinks every entry, counting each relink as a rehash event.
func (t *Table) rehash() {
	n := nextPrime(uint32(2*len(t.buckets) + 1))
	//asalint:hotalloc rehash is the amortized growth path, entered only past the load-factor bound; steady-state accumulation never reaches it
	t.buckets = make([]int32, n)
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	for i := range t.entries {
		b := t.bucketOf(t.entries[i].key)
		t.entries[i].next = t.buckets[b]
		t.buckets[b] = int32(i)
		t.stats.Rehashes++
	}
}

// Gather implements accum.Accumulator. Entries are appended in insertion
// order (each key appears once because Accumulate merges on insert).
func (t *Table) Gather(dst []accum.KV) []accum.KV {
	t.stats.Gathers++
	for i := range t.entries {
		dst = append(dst, accum.KV{Key: t.entries[i].key, Value: t.entries[i].value})
	}
	t.stats.GatheredKV += uint64(len(t.entries))
	return dst
}

// Len returns the number of distinct keys currently stored.
func (t *Table) Len() int { return len(t.entries) }

// BucketCount returns the current number of buckets (for tests and reports).
func (t *Table) BucketCount() int { return len(t.buckets) }

// Reset implements accum.Accumulator. Bucket heads are cleared; the bucket
// array keeps its size, matching unordered_map::clear semantics.
func (t *Table) Reset() {
	t.stats.Resets++
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.entries = t.entries[:0]
}

// Stats implements accum.Accumulator.
func (t *Table) Stats() accum.Stats { return t.stats }

// Name implements accum.Accumulator.
func (t *Table) Name() string { return "softhash" }

var _ accum.Accumulator = (*Table)(nil)
