package hashtab

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/rng"
)

func gathered(t *Table) []accum.KV {
	out := t.Gather(nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func TestBasicAccumulate(t *testing.T) {
	h := New(4)
	h.Accumulate(3, 1)
	h.Accumulate(3, 2)
	h.Accumulate(9, 5)
	got := gathered(h)
	if len(got) != 2 || got[0] != (accum.KV{Key: 3, Value: 3}) || got[1] != (accum.KV{Key: 9, Value: 5}) {
		t.Fatalf("got %v", got)
	}
	st := h.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Inserts != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollisionChains(t *testing.T) {
	h := New(1) // 13 buckets
	bc := uint32(h.BucketCount())
	// Keys congruent mod bucket count collide deliberately (identity hash).
	h.Accumulate(1, 1)
	h.Accumulate(1+bc, 1)
	h.Accumulate(1+2*bc, 1)
	// Probing the last key must walk the chain.
	before := h.Stats().ChainHops
	h.Accumulate(1, 1) // head or deep, must find it
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	st := h.Stats()
	if st.ChainHops == 0 {
		t.Fatal("no chain hops recorded despite forced collisions")
	}
	_ = before
	got := gathered(h)
	if len(got) != 3 {
		t.Fatalf("gathered %v", got)
	}
}

func TestRehashGrowth(t *testing.T) {
	h := New(1)
	start := h.BucketCount()
	for i := 0; i < 100; i++ {
		h.Accumulate(uint32(i*7), 1)
	}
	if h.BucketCount() <= start {
		t.Fatalf("bucket count did not grow: %d", h.BucketCount())
	}
	if h.Stats().Rehashes == 0 {
		t.Fatal("no rehash events recorded")
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d after rehash", h.Len())
	}
	// All values intact after rehash.
	for _, kv := range gathered(h) {
		if kv.Value != 1 {
			t.Fatalf("value lost in rehash: %v", kv)
		}
	}
}

func TestResetKeepsBuckets(t *testing.T) {
	h := New(1)
	for i := 0; i < 50; i++ {
		h.Accumulate(uint32(i), 1)
	}
	grown := h.BucketCount()
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if h.BucketCount() != grown {
		t.Fatal("Reset shrank the bucket array (unordered_map::clear keeps it)")
	}
	h.Accumulate(5, 2)
	got := gathered(h)
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("stale value after reset: %v", got)
	}
}

func TestOracleEquivalence(t *testing.T) {
	h := New(4)
	r := rng.New(11)
	for round := 0; round < 30; round++ {
		oracle := map[uint32]float64{}
		n := r.Intn(500) + 1
		for i := 0; i < n; i++ {
			k := uint32(r.Intn(80))
			v := r.Float64() - 0.25
			h.Accumulate(k, v)
			oracle[k] += v
		}
		got := gathered(h)
		if len(got) != len(oracle) {
			t.Fatalf("round %d: %d keys vs oracle %d", round, len(got), len(oracle))
		}
		for _, kv := range got {
			if math.Abs(kv.Value-oracle[kv.Key]) > 1e-9 {
				t.Fatalf("key %d: %g vs %g", kv.Key, kv.Value, oracle[kv.Key])
			}
		}
		h.Reset()
	}
}

func TestQuickOracle(t *testing.T) {
	h := New(2)
	f := func(keys []uint16) bool {
		h.Reset()
		oracle := map[uint32]float64{}
		for _, k := range keys {
			h.Accumulate(uint32(k), 1)
			oracle[uint32(k)]++
		}
		got := h.Gather(nil)
		if len(got) != len(oracle) {
			return false
		}
		for _, kv := range got {
			if kv.Value != oracle[kv.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var a accum.Accumulator = New(8)
	if a.Name() != "softhash" {
		t.Fatal("name wrong")
	}
	a.Accumulate(1, 1)
	if got := a.Gather(nil); len(got) != 1 {
		t.Fatalf("gather via interface: %v", got)
	}
}

func TestGatherAppends(t *testing.T) {
	h := New(4)
	h.Accumulate(1, 1)
	pre := []accum.KV{{Key: 99, Value: 9}}
	out := h.Gather(pre)
	if len(out) != 2 || out[0].Key != 99 {
		t.Fatalf("Gather must append: %v", out)
	}
}

func BenchmarkAccumulate(b *testing.B) {
	h := New(64)
	for i := 0; i < b.N; i++ {
		h.Accumulate(uint32(i&1023), 1)
	}
}
