package export

import (
	"bytes"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
)

func testGraph(t *testing.T) (*graph.Graph, []uint32) {
	t.Helper()
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), []uint32{0, 0, 0, 1, 1, 1}
}

func TestWriteGEXFWellFormed(t *testing.T) {
	g, mem := testGraph(t)
	var buf bytes.Buffer
	if err := WriteGEXF(&buf, g, mem); err != nil {
		t.Fatal(err)
	}
	nodes, edges, err := ParseGEXFCounts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("generated GEXF is not well-formed XML: %v", err)
	}
	if nodes != 6 || edges != 7 {
		t.Fatalf("GEXF has %d nodes, %d edges; want 6/7", nodes, edges)
	}
	if !strings.Contains(buf.String(), "viz:color") {
		t.Fatal("GEXF missing community colors")
	}
	if !strings.Contains(buf.String(), `defaultedgetype="undirected"`) {
		t.Fatal("GEXF missing edge type")
	}
}

func TestWriteGEXFNoMembership(t *testing.T) {
	g, _ := testGraph(t)
	var buf bytes.Buffer
	if err := WriteGEXF(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "attvalue") {
		t.Fatal("attributes emitted without membership")
	}
}

func TestWriteGEXFValidation(t *testing.T) {
	g, _ := testGraph(t)
	var buf bytes.Buffer
	if err := WriteGEXF(&buf, g, []uint32{0}); err == nil {
		t.Fatal("short membership accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g, mem := testGraph(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, mem); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph communities {") {
		t.Fatalf("DOT header wrong: %q", out[:30])
	}
	if strings.Count(out, "--") != 7 {
		t.Fatalf("DOT has %d edges, want 7", strings.Count(out, "--"))
	}
	if !strings.Contains(out, "fillcolor") {
		t.Fatal("DOT missing colors")
	}
}

func TestWriteDOTDirected(t *testing.T) {
	b := graph.NewBuilder(2, true)
	_ = b.AddEdge(0, 1, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, b.Build(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") || !strings.Contains(buf.String(), "->") {
		t.Fatalf("directed DOT wrong:\n%s", buf.String())
	}
}

func TestColorsCycleDistinctly(t *testing.T) {
	r0, g0, b0 := Color(0)
	r1, g1, b1 := Color(1)
	if r0 == r1 && g0 == g1 && b0 == b1 {
		t.Fatal("adjacent modules share a color")
	}
	// Cycle wraps safely.
	Color(1 << 30)
}

func TestFileRoundTrip(t *testing.T) {
	g, _ := testGraph(t)
	res, err := infomap.Run(g, infomap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteGEXFFile(dir+"/g.gexf", g, res.Membership); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOTFile(dir+"/g.dot", g, res.Membership); err != nil {
		t.Fatal(err)
	}
}

func TestExportLargerGraph(t *testing.T) {
	g, mem, err := gen.CliqueChain(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGEXF(&buf, g, mem); err != nil {
		t.Fatal(err)
	}
	nodes, edges, err := ParseGEXFCounts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if nodes != g.N() || edges != g.NumEdges() {
		t.Fatalf("GEXF %d/%d vs graph %d/%d", nodes, edges, g.N(), g.NumEdges())
	}
}
