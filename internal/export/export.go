// Package export writes graphs with community assignments in formats that
// visualization tools consume: GEXF (Gephi — the tool the paper's Figure 1
// was made with) and Graphviz DOT. Communities are encoded as node
// attributes and a qualitative color per module.
package export

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"github.com/asamap/asamap/internal/graph"
)

// palette is a qualitative 12-color cycle (ColorBrewer Set3-like).
var palette = [][3]uint8{
	{141, 211, 199}, {255, 255, 179}, {190, 186, 218}, {251, 128, 114},
	{128, 177, 211}, {253, 180, 98}, {179, 222, 105}, {252, 205, 229},
	{217, 217, 217}, {188, 128, 189}, {204, 235, 197}, {255, 237, 111},
}

// Color returns the RGB color assigned to module m.
func Color(m uint32) (r, g, b uint8) {
	c := palette[int(m)%len(palette)]
	return c[0], c[1], c[2]
}

// WriteGEXF writes the graph in GEXF 1.2 format with a "module" attribute
// and viz colors per community. membership may be nil (no attributes).
func WriteGEXF(w io.Writer, g *graph.Graph, membership []uint32) error {
	if membership != nil && len(membership) != g.N() {
		return fmt.Errorf("export: membership length %d, want %d", len(membership), g.N())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `<?xml version="1.0" encoding="UTF-8"?>`)
	fmt.Fprintln(bw, `<gexf xmlns="http://www.gexf.net/1.2draft" xmlns:viz="http://www.gexf.net/1.2draft/viz" version="1.2">`)
	mode := "undirected"
	if g.Directed() {
		mode = "directed"
	}
	fmt.Fprintf(bw, `  <graph defaultedgetype="%s">`+"\n", mode)
	if membership != nil {
		fmt.Fprintln(bw, `    <attributes class="node">`)
		fmt.Fprintln(bw, `      <attribute id="0" title="module" type="integer"/>`)
		fmt.Fprintln(bw, `    </attributes>`)
	}
	fmt.Fprintln(bw, `    <nodes>`)
	for v := 0; v < g.N(); v++ {
		if membership == nil {
			fmt.Fprintf(bw, `      <node id="%d" label="%d"/>`+"\n", v, v)
			continue
		}
		r, gg, b := Color(membership[v])
		fmt.Fprintf(bw, `      <node id="%d" label="%d">`+"\n", v, v)
		fmt.Fprintf(bw, `        <attvalues><attvalue for="0" value="%d"/></attvalues>`+"\n", membership[v])
		fmt.Fprintf(bw, `        <viz:color r="%d" g="%d" b="%d"/>`+"\n", r, gg, b)
		fmt.Fprintln(bw, `      </node>`)
	}
	fmt.Fprintln(bw, `    </nodes>`)
	fmt.Fprintln(bw, `    <edges>`)
	id := 0
	for u := 0; u < g.N(); u++ {
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			if !g.Directed() && int(v) < u {
				continue
			}
			fmt.Fprintf(bw, `      <edge id="%d" source="%d" target="%d" weight="%g"/>`+"\n",
				id, u, v, ws[i])
			id++
		}
	}
	fmt.Fprintln(bw, `    </edges>`)
	fmt.Fprintln(bw, `  </graph>`)
	fmt.Fprintln(bw, `</gexf>`)
	return bw.Flush()
}

// WriteDOT writes the graph in Graphviz DOT format, nodes colored and
// clustered by community.
func WriteDOT(w io.Writer, g *graph.Graph, membership []uint32) error {
	if membership != nil && len(membership) != g.N() {
		return fmt.Errorf("export: membership length %d, want %d", len(membership), g.N())
	}
	bw := bufio.NewWriter(w)
	name, sep := "graph", "--"
	if g.Directed() {
		name, sep = "digraph", "->"
	}
	fmt.Fprintf(bw, "%s communities {\n  node [style=filled];\n", name)
	for v := 0; v < g.N(); v++ {
		if membership != nil {
			r, gg, b := Color(membership[v])
			fmt.Fprintf(bw, "  %d [fillcolor=\"#%02x%02x%02x\", label=\"%d/m%d\"];\n",
				v, r, gg, b, v, membership[v])
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for u := 0; u < g.N(); u++ {
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			if !g.Directed() && int(v) < u {
				continue
			}
			fmt.Fprintf(bw, "  %d %s %d [weight=%g];\n", u, sep, v, ws[i])
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteGEXFFile writes GEXF to path.
func WriteGEXFFile(path string, g *graph.Graph, membership []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGEXF(f, g, membership); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteDOTFile writes DOT to path.
func WriteDOTFile(path string, g *graph.Graph, membership []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDOT(f, g, membership); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gexfDoc is the minimal schema used to validate generated GEXF in tests.
type gexfDoc struct {
	XMLName xml.Name  `xml:"gexf"`
	Graph   gexfGraph `xml:"graph"`
}

type gexfGraph struct {
	Nodes []gexfNode `xml:"nodes>node"`
	Edges []gexfEdge `xml:"edges>edge"`
}

type gexfNode struct {
	ID string `xml:"id,attr"`
}

type gexfEdge struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

// ParseGEXFCounts parses GEXF and returns (nodes, edges) — used by tests to
// verify well-formedness without a full GEXF implementation.
func ParseGEXFCounts(r io.Reader) (int, int, error) {
	var doc gexfDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return 0, 0, err
	}
	return len(doc.Graph.Nodes), len(doc.Graph.Edges), nil
}
