package clock

import (
	"testing"
	"time"
)

func TestRealClockMonotone(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
	if c.Since(a) < 0 {
		t.Fatal("negative Since on real clock")
	}
}

func TestFakeNowAndSince(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if got := f.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	f.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 1s early")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(5, 0)) {
			t.Fatalf("fired at %v, want t=5s", at)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if f.Pending() != 0 {
		t.Fatalf("%d timers still pending", f.Pending())
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestFakeMultipleTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	late := f.After(10 * time.Second)
	early := f.After(2 * time.Second)
	mid := f.After(5 * time.Second)
	f.Advance(20 * time.Second)
	te, tm, tl := <-early, <-mid, <-late
	if !(te.Equal(tl) && tm.Equal(tl)) {
		t.Fatalf("timers observed different fire times: %v %v %v", te, tm, tl)
	}
	if f.Pending() != 0 {
		t.Fatalf("%d timers still pending", f.Pending())
	}
}
