// Package clock abstracts wall-clock access behind an injectable interface so
// that time-dependent behaviour — backpressure Retry-After estimates, cache
// ages, backoff waits — can be driven deterministically in tests instead of
// with real sleeps. Production code takes a Clock and passes Real; tests pass
// a Fake and advance it explicitly, which keeps suites deterministic under the
// 10–20x slowdown of the race detector.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal wall-clock surface the repository's components need.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// After returns a channel that delivers the (then-)current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the system clock.
type Real struct{}

// Now implements Clock via time.Now.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock via time.Since.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// After implements Clock via time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for tests. It never moves on its own;
// Advance releases every timer whose deadline has been reached, in deadline
// order. The zero value is not valid; construct with NewFake.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	due time.Time
	ch  chan time.Time
}

// NewFake returns a Fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake elapsed time since t.
func (f *Fake) Since(t time.Time) time.Duration {
	return f.Now().Sub(t)
}

// After returns a channel that fires when the fake clock has been advanced
// past d. A non-positive d fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.timers = append(f.timers, &fakeTimer{due: f.now.Add(d), ch: ch})
	return ch
}

// Advance moves the fake clock forward by d and fires every timer whose
// deadline is reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	remaining := f.timers[:0]
	// Fire in deadline order so dependent timers observe a consistent
	// sequence; the slice is small in tests, so a simple selection pass
	// beats keeping a heap.
	for {
		var next *fakeTimer
		for _, t := range f.timers {
			if t.ch == nil || t.due.After(f.now) {
				continue
			}
			if next == nil || t.due.Before(next.due) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.ch <- f.now
		next.ch = nil
	}
	for _, t := range f.timers {
		if t.ch != nil {
			remaining = append(remaining, t)
		}
	}
	f.timers = remaining
}

// Pending returns how many timers are armed and waiting.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}
