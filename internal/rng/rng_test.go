package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPowerLawBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 5000; i++ {
		k := r.PowerLaw(2, 100, 2.5)
		if k < 2 || k > 100 {
			t.Fatalf("PowerLaw out of bounds: %d", k)
		}
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	r := New(13)
	if k := r.PowerLaw(5, 5, 2.0); k != 5 {
		t.Fatalf("PowerLaw(5,5) = %d, want 5", k)
	}
	if k := r.PowerLaw(0, 0, 2.0); k != 1 {
		t.Fatalf("PowerLaw(0,0) = %d, want clamp to 1", k)
	}
	if k := r.PowerLaw(7, 3, 2.0); k != 7 {
		t.Fatalf("PowerLaw(7,3) = %d, want max clamped up to min", k)
	}
}

func TestPowerLawSkew(t *testing.T) {
	// A power law with gamma=2.5 should put most of its mass near the
	// minimum degree.
	r := New(17)
	low := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.PowerLaw(1, 1000, 2.5) <= 3 {
			low++
		}
	}
	if frac := float64(low) / n; frac < 0.75 {
		t.Fatalf("only %.2f of samples <= 3; distribution not heavy at head", frac)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	totalFlips := 0
	const trials = 64
	for bit := 0; bit < trials; bit++ {
		a := Hash64(12345)
		b := Hash64(12345 ^ (1 << uint(bit)))
		x := a ^ b
		for x != 0 {
			totalFlips += int(x & 1)
			x >>= 1
		}
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %g bits, want ~32", avg)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(99)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("split streams overlapped %d times", same)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	r := New(21)
	f := func(n uint16, _ uint8) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(22)
	f := func(n uint32) bool {
		m := uint64(n) + 1
		return r.Uint64n(m) < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
