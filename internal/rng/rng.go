// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository. Every experiment in the paper
// reproduction is seeded, so two runs with the same seed produce the same
// graphs, the same traversal orders, and the same simulated hardware counters.
//
// The package implements SplitMix64 (for seeding and cheap hashing) and
// xoshiro256** (the workhorse generator). Both are well-studied generators
// with excellent statistical quality and trivially portable semantics, which
// matters more here than cryptographic strength.
package rng

import "math"

// SplitMix64 advances the state x by the SplitMix64 algorithm and returns the
// next 64-bit output. It is used to expand a single user seed into the larger
// state vectors required by xoshiro256**.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes a 64-bit value through the SplitMix64 finalizer. It is a
// high-quality integer hash suitable for hash-table index derivation.
func Hash64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString hashes a string to 64 bits: an FNV-1a pass over the bytes
// followed by the SplitMix64 finalizer to spread the low-entropy FNV output
// across all bits. Deterministic across runs and platforms, which makes it
// safe for consistent-hash placement and fault-schedule coordinates.
func HashString(s string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return Hash64(h)
}

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64. Any
// seed, including 0, yields a valid non-degenerate state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits from the generator.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Classic rejection sampling on the top bits; fast in practice because
	// the rejection zone is at most one part in two.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes the slice in place using Fisher–Yates.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleUint32 permutes the slice in place using Fisher–Yates.
func (r *RNG) ShuffleUint32(p []uint32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// PowerLaw samples an integer degree in [min, max] from a discrete power law
// with exponent gamma (P(k) ∝ k^-gamma) using inverse transform sampling on
// the continuous approximation. This is the sampler used for scale-free
// degree sequences and LFR community sizes.
func (r *RNG) PowerLaw(min, max int, gamma float64) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if min == max {
		return min
	}
	// Inverse CDF of p(x) ∝ x^-gamma on [min, max+1).
	a := 1.0 - gamma
	lo := math.Pow(float64(min), a)
	hi := math.Pow(float64(max+1), a)
	u := r.Float64()
	x := math.Pow(lo+u*(hi-lo), 1.0/a)
	k := int(x)
	if k < min {
		k = min
	}
	if k > max {
		k = max
	}
	return k
}

// Split returns a new generator deterministically derived from this one,
// suitable for handing to a parallel worker. The parent stream advances by
// one draw per call, so repeated Splits yield independent child streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}
