// Package obs is the hierarchical span tracer behind the repository's
// observability stack: every detection run can emit a run → level → sweep →
// kernel span tree (plus schedule-dependent per-worker spans), and the
// serving layer emits one root span per HTTP request. Completed spans land in
// a bounded ring buffer for live inspection (/debug/trace) or in an unbounded
// store for one-shot trace artifacts (-trace-out), and export either as
// Chrome trace-event JSON (chrome://tracing, Perfetto) or as a canonical
// span-tree JSON used to assert determinism.
//
// Two properties distinguish this tracer from an off-the-shelf one:
//
//   - Deterministic span IDs. IDs are derived structurally — a SplitMix64
//     hash (internal/rng) of the parent's ID and the child's birth index —
//     never from a global counter or an entropy source. Two runs with the
//     same seed therefore assign the same IDs to the same logical spans, no
//     matter how goroutines interleave.
//
//   - A volatility partition. Spans and attributes that depend on the
//     execution schedule (which worker ran a block, busy times, steal
//     counts) are marked volatile; CanonicalJSON excludes them along with
//     all timestamps, so the canonical tree of a seeded run is byte-identical
//     across worker counts and scheduling policies. The Chrome export keeps
//     everything.
//
// All wall-clock reads flow through an injectable clock.Clock, so tests can
// drive time with clock.Fake and assert byte-exact artifacts.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/rng"
)

// Config sizes a Tracer. The zero value is valid: real clock, unbounded
// store, seed 0.
type Config struct {
	// Clock supplies span timestamps; nil means the real clock.
	Clock clock.Clock
	// RingSize bounds the store of completed spans: once more than RingSize
	// spans have ended, the oldest are dropped. Zero or negative keeps every
	// span (one-shot trace artifacts).
	RingSize int
	// Seed namespaces the deterministic span IDs. Runs that should produce
	// identical canonical trees must use identical seeds.
	Seed uint64
}

// Tracer creates spans and stores the completed ones. Safe for concurrent
// use.
type Tracer struct {
	clk   clock.Clock
	epoch time.Time
	seed  uint64
	ring  int

	rootSeq atomic.Uint64

	mu            sync.Mutex
	done          []SpanData // completed spans in End order (ring-evicted from the front)
	start         int        // index of the oldest retained span in done (ring mode)
	droppedSpans  uint64     // spans ring-evicted before anyone read them
	droppedTraces uint64     // evicted spans that rooted a trace segment (local or remote)
}

// New constructs a Tracer from cfg. A nil *Tracer is a valid no-op tracer:
// Begin returns a nil span and every span method no-ops, so call sites need
// no tracing-enabled branches.
func New(cfg Config) *Tracer {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Tracer{
		clk:   clk,
		epoch: clk.Now(),
		seed:  cfg.Seed,
		ring:  cfg.RingSize,
	}
}

// Attr is one span attribute. Values are pre-rendered strings so export is
// format-stable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed, attributed node of the trace tree. A span is owned by
// the goroutine that created it except for concurrent keyed children
// (ChildKeyed), which own themselves; attribute writes and End are
// internally synchronized so misuse degrades to lost attributes, not races.
type Span struct {
	tracer   *Tracer
	id       uint64
	parent   uint64
	trace    uint64 // the trace this span belongs to (root span ID, inherited)
	seq      uint64 // birth index among siblings; orders canonical children
	name     string
	track    int
	volatile bool
	remote   bool // roots a remote segment (BeginRemote)
	start    time.Time

	children atomic.Uint64

	mu    sync.Mutex
	attrs []Attr
	vol   []Attr
	ended bool
}

// keyedSalt separates the ID space of keyed children from sequential ones so
// a keyed child can never alias a sibling's structural ID.
const keyedSalt = 0x9e3779b97f4a7c15

// keyedSeqBase orders keyed children after all sequential siblings in the
// canonical tree.
const keyedSeqBase = uint64(1) << 32

// remoteSalt separates remote segment roots from structural children of the
// same parent span, so a forwarded request's remote root can never alias a
// sender-side child.
const remoteSalt = 0xd1b54a32d192ed03

// Begin starts a new root span; the span's ID is also the ID of the new
// trace it roots. Returns nil (a no-op span) on a nil tracer.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	pos := t.rootSeq.Add(1)
	id := rng.Hash64(t.seed ^ rng.Hash64(pos))
	return &Span{
		tracer: t,
		id:     id,
		trace:  id,
		seq:    pos,
		name:   name,
		start:  t.clk.Now(),
	}
}

// BeginRemote starts the local root of a distributed trace segment: a span
// belonging to traceID whose parent lives on another node. Its ID is a pure
// function of the remote parent's ID, so duplicate deliveries of the same
// forwarded request produce the same remote root (merge dedups them), while
// distinct retry attempts — each propagating its own attempt span as parent —
// produce distinct roots. Returns nil on a nil tracer or zero coordinates.
func (t *Tracer) BeginRemote(name string, traceID, parent uint64) *Span {
	if t == nil {
		return nil
	}
	if traceID == 0 || parent == 0 {
		return t.Begin(name)
	}
	return &Span{
		tracer: t,
		id:     rng.Hash64(parent ^ remoteSalt),
		parent: parent,
		trace:  traceID,
		seq:    1,
		name:   name,
		remote: true,
		start:  t.clk.Now(),
	}
}

// ID returns the span's deterministic ID (0 on a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Trace returns the ID of the trace the span belongs to (0 on a nil span).
func (s *Span) Trace() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// Child starts a sub-span. The child's ID is a pure function of the parent's
// ID and the child's birth index, so serially created children get identical
// IDs across runs. Safe on a nil span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	pos := s.children.Add(1)
	return &Span{
		tracer: s.tracer,
		id:     rng.Hash64(s.id ^ rng.Hash64(pos)),
		parent: s.id,
		trace:  s.trace,
		seq:    pos,
		name:   name,
		start:  s.tracer.clk.Now(),
	}
}

// ChildKeyed starts a schedule-dependent sub-span identified by a caller
// key (e.g. a worker ID) instead of a birth index, so concurrent creation
// order cannot perturb IDs. Keyed children are volatile: they carry
// per-schedule data and are excluded from the canonical tree. Safe on a nil
// span (returns nil).
func (s *Span) ChildKeyed(name string, key uint64) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:   s.tracer,
		id:       rng.Hash64(s.id ^ rng.Hash64(key) ^ keyedSalt),
		parent:   s.id,
		trace:    s.trace,
		seq:      keyedSeqBase + key,
		name:     name,
		volatile: true,
		start:    s.tracer.clk.Now(),
	}
}

// SetTrack assigns the span to a display track (Chrome trace "tid"); track 0
// is the main track. Used for per-worker spans so they render as parallel
// lanes instead of stacking.
func (s *Span) SetTrack(track int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.track = track
	s.mu.Unlock()
}

// SetAttr records a deterministic attribute: one whose value is a pure
// function of (graph, options fingerprint, seed) and therefore belongs in
// the canonical tree. Schedule- or time-dependent values must use the
// Volatile variants instead. No-op after End or on a nil span.
func (s *Span) SetAttr(key, value string) { s.setAttr(key, value, false) }

// SetUint records a deterministic integer attribute.
func (s *Span) SetUint(key string, v uint64) {
	s.setAttr(key, strconv.FormatUint(v, 10), false)
}

// SetFloat records a deterministic float attribute with the shortest
// round-trip decimal rendering (format-stable across platforms).
func (s *Span) SetFloat(key string, v float64) {
	s.setAttr(key, strconv.FormatFloat(v, 'g', -1, 64), false)
}

// SetBool records a deterministic boolean attribute ("true"/"false").
func (s *Span) SetBool(key string, v bool) {
	s.setAttr(key, strconv.FormatBool(v), false)
}

// SetVolatileAttr records a schedule- or time-dependent attribute, excluded
// from the canonical tree but kept in the Chrome export and /debug/trace.
func (s *Span) SetVolatileAttr(key, value string) { s.setAttr(key, value, true) }

// SetVolatileBool records a volatile boolean attribute.
func (s *Span) SetVolatileBool(key string, v bool) {
	s.setAttr(key, strconv.FormatBool(v), true)
}

// SetVolatileUint records a volatile integer attribute.
func (s *Span) SetVolatileUint(key string, v uint64) {
	s.setAttr(key, strconv.FormatUint(v, 10), true)
}

// SetVolatileFloat records a volatile float attribute.
func (s *Span) SetVolatileFloat(key string, v float64) {
	s.setAttr(key, strconv.FormatFloat(v, 'g', -1, 64), true)
}

func (s *Span) setAttr(key, value string, volatile bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if volatile {
			s.vol = append(s.vol, Attr{key, value})
		} else {
			s.attrs = append(s.attrs, Attr{key, value})
		}
	}
	s.mu.Unlock()
}

// End completes the span and commits it to the tracer's store. Second and
// later Ends, and Ends on nil spans, are no-ops. Spans never ended are never
// exported.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.clk.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		ID:            s.id,
		Parent:        s.parent,
		Trace:         s.trace,
		Seq:           s.seq,
		Name:          s.name,
		Track:         s.track,
		Volatile:      s.volatile,
		Remote:        s.remote,
		Start:         s.start,
		End:           end,
		Attrs:         s.attrs,
		VolatileAttrs: s.vol,
	}
	s.mu.Unlock()
	s.tracer.commit(data)
}

// SpanData is one completed span as retained by the tracer.
type SpanData struct {
	ID            uint64
	Parent        uint64 // 0 for local roots; the remote parent for remote segment roots
	Trace         uint64 // root span ID of the trace this span belongs to
	Seq           uint64
	Name          string
	Track         int
	Volatile      bool
	Remote        bool // roots a remote trace segment (parent lives on another node)
	Start, End    time.Time
	Attrs         []Attr
	VolatileAttrs []Attr
}

// rootsSegment reports whether evicting this span truncates a whole trace
// segment: a local trace root (ID == Trace) or a remote segment root.
func (d SpanData) rootsSegment() bool { return d.ID == d.Trace || d.Remote }

// Duration returns the span's wall time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

func (t *Tracer) commit(data SpanData) {
	t.mu.Lock()
	t.done = append(t.done, data)
	if t.ring > 0 && len(t.done)-t.start > t.ring {
		next := len(t.done) - t.ring
		// Truncation is never silent: every evicted span bumps the dropped
		// counter, and evicted segment roots additionally count as dropped
		// traces, so /metrics can surface how much trace history the ring
		// discarded.
		for i := t.start; i < next; i++ {
			t.droppedSpans++
			if t.done[i].rootsSegment() {
				t.droppedTraces++
			}
		}
		t.start = next
		// Compact once the dead prefix dominates, so memory stays O(ring)
		// without copying on every End.
		if t.start >= t.ring {
			t.done = append(t.done[:0], t.done[t.start:]...)
			t.start = 0
		}
	}
	t.mu.Unlock()
}

// Dropped reports how many completed spans the ring has evicted, and how
// many of those rooted a trace segment (a truncated-trace witness).
func (t *Tracer) Dropped() (spans, traces uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedSpans, t.droppedTraces
}

// Epoch returns the tracer's construction time; Chrome-export timestamps are
// microseconds since this instant.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Len reports how many completed spans are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done) - t.start
}

// Snapshot returns up to n most recently completed spans in End order
// (oldest first). n <= 0 returns all retained spans. The returned slice is a
// copy; Attr slices are shared but never mutated after End.
func (t *Tracer) Snapshot(n int) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.done[t.start:]
	if n > 0 && len(live) > n {
		live = live[len(live)-n:]
	}
	out := make([]SpanData, len(live))
	copy(out, live)
	return out
}

// TraceSpans returns every retained completed span belonging to traceID, in
// End order. This is the per-trace read path behind GET /debug/trace/{id}:
// the ring is the store, the trace ID is the key.
func (t *Tracer) TraceSpans(traceID uint64) []SpanData {
	if t == nil || traceID == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanData
	for _, d := range t.done[t.start:] {
		if d.Trace == traceID {
			out = append(out, d)
		}
	}
	return out
}
