package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a slog text logger writing to w at the given level —
// the structured logger the serving stack and CLIs share. Fields are
// key=value pairs; the serving layer adds request_id to every record emitted
// on behalf of a request, so one grep correlates a request's admission,
// execution, and completion lines.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// DiscardLogger returns a logger that drops every record; the default for
// library consumers (and tests) that did not configure logging.
func DiscardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler is slog.DiscardHandler, which only exists from Go 1.24 —
// the module still targets 1.22.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// WithRequestID returns logger with the request_id field attached to every
// record, correlating log lines with the request's root span and response
// header.
func WithRequestID(logger *slog.Logger, id string) *slog.Logger {
	return logger.With("request_id", id)
}

// ParseLevel maps the CLI -log-level spelling onto a slog.Level, defaulting
// to Info for unknown values.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}
