package propagate

import (
	"net/http"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	c := Context{TraceID: 0xdeadbeefcafe0123, Parent: 0x0123456789abcdef, Hop: 3}
	h := http.Header{}
	Inject(h, c)
	got, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed on %q", h.Get(Header))
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	if want := "deadbeefcafe0123-0123456789abcdef-3"; h.Get(Header) != want {
		t.Errorf("wire form %q, want %q", h.Get(Header), want)
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{1, 0xffffffffffffffff, 0x00000000000000aa} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Errorf("FormatID(%d) = %q, want 16 digits", id, s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Errorf("ParseID(FormatID(%d)) = %d, %v", id, back, err)
		}
	}
	for _, bad := range []string{"", "12ab", "zzzzzzzzzzzzzzzz", "0123456789abcdef0"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted garbage", bad)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"justonefield",
		"0000000000000001-0000000000000002",      // two fields
		"0000000000000001-0000000000000002-1-9",  // four fields
		"0000000000000000-0000000000000002-1",    // zero trace
		"0000000000000001-0000000000000000-1",    // zero parent
		"0000000000000001-0000000000000002-0",    // hop below range
		"0000000000000001-0000000000000002-17",   // hop above MaxHops
		"0000000000000001-0000000000000002-x",    // non-numeric hop
		"000000000000001-00000000000000002-1",    // wrong widths
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
		h := http.Header{Header: []string{bad}}
		if _, ok := Extract(h); ok {
			t.Errorf("Extract accepted %q", bad)
		}
	}
}

func TestInjectSkipsInvalid(t *testing.T) {
	h := http.Header{}
	Inject(h, Context{})
	Inject(h, Context{TraceID: 1, Parent: 2, Hop: MaxHops + 1})
	if v := h.Get(Header); v != "" {
		t.Errorf("invalid context was injected: %q", v)
	}
}

func TestStrip(t *testing.T) {
	h := http.Header{}
	Inject(h, Context{TraceID: 1, Parent: 2, Hop: 1})
	if h.Get(Header) == "" {
		t.Fatal("inject failed")
	}
	Strip(h)
	if v := h.Get(Header); v != "" {
		t.Errorf("Strip left %q", v)
	}
}

func TestStringMatchesWireDoc(t *testing.T) {
	c := Context{TraceID: 0x01, Parent: 0x02, Hop: 16}
	if got := c.String(); !strings.HasSuffix(got, "-16") || len(got) != 16+1+16+3 {
		t.Errorf("String() = %q, unexpected shape", got)
	}
}
