// Package propagate defines the cluster's trace-context wire format: the
// X-Asamap-Trace request header that carries a trace across process
// boundaries, so a detect request forwarded router→owner (or a replication,
// cache-adoption, or lineage-fetch call) roots its remote span tree under the
// exact client-side span that issued it.
//
// The format is deliberately minimal — three fields, fixed width, no
// vendor-prefixed baggage:
//
//	X-Asamap-Trace: <trace-id:16 hex>-<parent-span-id:16 hex>-<hop:decimal>
//
// trace-id is the 64-bit ID of the root span that started the trace (the
// first request's root span ID — internal/obs assigns it deterministically,
// so a replayed scenario reproduces the same trace IDs). parent-span-id is
// the span on the sending node under which the receiving node must root its
// own request span: the per-attempt span of the peer gauntlet, so each retry
// attempt stitches to its own parent and duplicate deliveries of one attempt
// collapse to one deterministic remote ID. hop counts forwarding depth and
// caps at MaxHops — a routing loop degrades to an untraced request, never to
// an unbounded header chain.
//
// The header is cluster-internal addressing, not protocol: serve.Client
// strips it from any request leaving for a non-cluster destination, and the
// request middleware consumes (deletes) it at ingress so handlers never
// re-forward a stale context.
package propagate

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

const (
	// Header carries the trace context on cluster-internal requests.
	Header = "X-Asamap-Trace"
	// ResponseHeader reports the trace ID a request was recorded under, so
	// clients can fetch the merged trace via GET /debug/trace/{trace-id}.
	ResponseHeader = "X-Asamap-Trace-Id"
	// MaxHops bounds forwarding depth: a context that would exceed it is not
	// propagated further, so a misrouted request costs an untraced hop, not
	// an unbounded chain.
	MaxHops = 16
)

// Context is one parsed trace context.
type Context struct {
	// TraceID identifies the whole distributed trace (the originating
	// request's root span ID).
	TraceID uint64
	// Parent is the sending-side span the receiver roots under.
	Parent uint64
	// Hop is the forwarding depth of the receiving node (the originating
	// request is hop 0).
	Hop int
}

// Valid reports whether the context can be propagated: non-zero IDs and a
// hop within bounds.
func (c Context) Valid() bool {
	return c.TraceID != 0 && c.Parent != 0 && c.Hop >= 1 && c.Hop <= MaxHops
}

// String renders the wire form.
func (c Context) String() string {
	return FormatID(c.TraceID) + "-" + FormatID(c.Parent) + "-" + strconv.Itoa(c.Hop)
}

// FormatID renders a span or trace ID in the fixed-width form used
// everywhere IDs cross the wire (headers, /debug/trace payloads).
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses a FormatID-rendered ID.
func ParseID(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("propagate: id %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("propagate: bad id %q: %w", s, err)
	}
	return v, nil
}

// Parse decodes the wire form. It rejects malformed fields, zero IDs, and
// out-of-range hops — a garbage header must degrade to "untraced", never to
// a trace keyed on ID 0.
func Parse(s string) (Context, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Context{}, fmt.Errorf("propagate: header %q: want trace-parent-hop", s)
	}
	trace, err := ParseID(parts[0])
	if err != nil {
		return Context{}, err
	}
	parent, err := ParseID(parts[1])
	if err != nil {
		return Context{}, err
	}
	hop, err := strconv.Atoi(parts[2])
	if err != nil {
		return Context{}, fmt.Errorf("propagate: bad hop %q: %w", parts[2], err)
	}
	c := Context{TraceID: trace, Parent: parent, Hop: hop}
	if !c.Valid() {
		return Context{}, fmt.Errorf("propagate: invalid context %q", s)
	}
	return c, nil
}

// Inject writes the context onto h, replacing any present value. Invalid
// contexts (zero IDs, hop out of range) are not written — the request simply
// travels untraced.
func Inject(h http.Header, c Context) {
	if !c.Valid() {
		return
	}
	h.Set(Header, c.String())
}

// Extract reads and validates the context from h. ok is false when the
// header is absent or malformed.
func Extract(h http.Header) (Context, bool) {
	v := h.Get(Header)
	if v == "" {
		return Context{}, false
	}
	c, err := Parse(v)
	if err != nil {
		return Context{}, false
	}
	return c, true
}

// Strip removes the trace context from h. Egress paths that leave the
// cluster call it so the internal addressing never reaches a third party.
func Strip(h http.Header) { h.Del(Header) }
