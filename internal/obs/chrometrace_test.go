package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses a Chrome trace artifact back into its event list.
func decodeTrace(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var out chromeTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, data)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	return out.TraceEvents
}

// TestChromeTraceExport builds a known two-level trace on a fake clock and
// checks the exported events: names, categories, microsecond timestamps, and
// that each child's [ts, ts+dur] interval and parent link nest inside its
// parent — the property chrome://tracing uses to draw the flame graph.
func TestChromeTraceExport(t *testing.T) {
	clk := fakeClock()
	tr := New(Config{Clock: clk, Seed: 1})
	run := tr.Begin("run")
	clk.Advance(time.Millisecond)
	kernel := run.Child("PageRank")
	kernel.SetAttr("damping", "0.85")
	clk.Advance(2 * time.Millisecond)
	kernel.End()
	worker := run.ChildKeyed("worker", 3)
	worker.SetTrack(4)
	clk.Advance(time.Millisecond)
	worker.End()
	run.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) != 3 {
		t.Fatalf("want 3 events, got %d", len(events))
	}
	byName := map[string]chromeEvent{}
	for _, e := range events {
		if e.Phase != "X" || e.PID != 1 {
			t.Errorf("event %s: ph=%s pid=%d, want X/1", e.Name, e.Phase, e.PID)
		}
		byName[e.Name] = e
	}
	runEv, krnEv, wrkEv := byName["run"], byName["PageRank"], byName["worker"]
	if krnEv.Args["parent"] != runEv.Args["id"] || wrkEv.Args["parent"] != runEv.Args["id"] {
		t.Error("child events do not link to the run event's id")
	}
	if krnEv.Args["damping"] != "0.85" {
		t.Errorf("kernel attr lost: args=%v", krnEv.Args)
	}
	if krnEv.Cat != "span" || wrkEv.Cat != "volatile" {
		t.Errorf("categories: kernel=%s worker=%s", krnEv.Cat, wrkEv.Cat)
	}
	if wrkEv.TID != 5 {
		t.Errorf("worker track: tid=%d, want 5", wrkEv.TID)
	}
	// Fake clock: run spans 0..4000µs, kernel 1000..3000µs, worker 3000..4000µs.
	if runEv.TS != 0 || runEv.Dur != 4000 {
		t.Errorf("run interval [%g, +%g], want [0, +4000]", runEv.TS, runEv.Dur)
	}
	if krnEv.TS != 1000 || krnEv.Dur != 2000 {
		t.Errorf("kernel interval [%g, +%g], want [1000, +2000]", krnEv.TS, krnEv.Dur)
	}
	for _, child := range []chromeEvent{krnEv, wrkEv} {
		if child.TS < runEv.TS || child.TS+child.Dur > runEv.TS+runEv.Dur {
			t.Errorf("%s interval [%g, +%g] escapes run [%g, +%g]",
				child.Name, child.TS, child.Dur, runEv.TS, runEv.Dur)
		}
	}
}

// TestChromeTraceByteStable: on a fake clock the whole artifact is
// byte-deterministic (json map args are key-sorted by encoding/json).
func TestChromeTraceByteStable(t *testing.T) {
	render := func() []byte {
		clk := fakeClock()
		tr := New(Config{Clock: clk, Seed: 9})
		buildRun(tr, 2)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	// Worker spans end concurrently, so End order (event order) can differ;
	// compare as sorted line-independent sets via unmarshal+marshal of each
	// event.
	ea, eb := decodeTrace(t, a), decodeTrace(t, b)
	if len(ea) != len(eb) {
		t.Fatalf("event counts differ: %d vs %d", len(ea), len(eb))
	}
	seen := map[string]int{}
	key := func(e chromeEvent) string {
		j, _ := json.Marshal(e)
		return string(j)
	}
	for _, e := range ea {
		seen[key(e)]++
	}
	for _, e := range eb {
		seen[key(e)]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Errorf("event multiset differs: %s (count %+d)", k, n)
		}
	}
}
