package obs

import (
	"testing"
)

func TestBeginRemoteDeterministicRoots(t *testing.T) {
	tr := New(Config{Clock: fakeClock()})
	const trace, parent = uint64(0xaaaa), uint64(0xbbbb)

	a := tr.BeginRemote("request", trace, parent)
	b := tr.BeginRemote("request", trace, parent)
	if a.ID() != b.ID() {
		t.Errorf("duplicate delivery produced distinct remote roots: %x vs %x", a.ID(), b.ID())
	}
	if a.Trace() != trace {
		t.Errorf("remote root trace %x, want %x", a.Trace(), trace)
	}
	c := tr.BeginRemote("request", trace, parent+1)
	if c.ID() == a.ID() {
		t.Error("distinct parent attempts produced the same remote root")
	}
	// Children inherit the remote trace.
	ch := a.Child("work")
	if ch.Trace() != trace {
		t.Errorf("child trace %x, want %x", ch.Trace(), trace)
	}
	ch.End()
	a.End()
	b.End()
	c.End()

	spans := tr.TraceSpans(trace)
	if len(spans) != 4 {
		t.Fatalf("TraceSpans returned %d spans, want 4", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Errorf("span %x carries trace %x", sp.ID, sp.Trace)
		}
	}
	// Remote roots are flagged so the merge knows they root a segment even
	// though their ID differs from the trace ID.
	if !spans[1].Remote {
		t.Error("remote root not flagged Remote")
	}

	// Remote roots must not consume local root sequence numbers: the next
	// local Begin has the same ID whether or not remote segments arrived.
	fresh := New(Config{Clock: fakeClock()})
	want := fresh.Begin("r").ID()
	if got := tr.Begin("r").ID(); got != want {
		t.Errorf("remote roots perturbed local root IDs: %x vs %x", got, want)
	}
}

func TestBeginRemoteZeroCoordinatesFallsBack(t *testing.T) {
	tr := New(Config{Clock: fakeClock()})
	sp := tr.BeginRemote("request", 0, 7)
	if sp.Trace() != sp.ID() || sp.Trace() == 0 {
		t.Errorf("zero trace coordinate should start a fresh local trace, got id=%x trace=%x", sp.ID(), sp.Trace())
	}
	var nilT *Tracer
	if nilT.BeginRemote("request", 1, 2) != nil {
		t.Error("nil tracer should return nil span")
	}
}

func TestTraceSpansFiltersAndNilSafety(t *testing.T) {
	tr := New(Config{Clock: fakeClock()})
	a := tr.Begin("a")
	b := tr.Begin("b")
	a.End()
	b.End()
	if got := tr.TraceSpans(a.Trace()); len(got) != 1 || got[0].Name != "a" {
		t.Errorf("TraceSpans(a) = %+v, want just span a", got)
	}
	if tr.TraceSpans(0) != nil {
		t.Error("TraceSpans(0) should be nil")
	}
	var nilT *Tracer
	if nilT.TraceSpans(1) != nil {
		t.Error("nil tracer TraceSpans should be nil")
	}
}

func TestDroppedCountsEvictedSpansAndTraces(t *testing.T) {
	tr := New(Config{Clock: fakeClock(), RingSize: 2})
	// Each request root also counts as a trace segment root.
	for i := 0; i < 5; i++ {
		sp := tr.Begin("request")
		ch := sp.Child("work")
		ch.End()
		sp.End()
	}
	// 10 spans ended, ring keeps 2 → 8 dropped; among the dropped, the roots.
	spans, traces := tr.Dropped()
	if spans != 8 {
		t.Errorf("dropped spans = %d, want 8", spans)
	}
	if traces != 4 {
		t.Errorf("dropped traces = %d, want 4", traces)
	}
	var nilT *Tracer
	if s, tt := nilT.Dropped(); s != 0 || tt != 0 {
		t.Error("nil tracer Dropped should be zero")
	}
}

func TestBuildCanonicalTreeDedupsRepeatedIDs(t *testing.T) {
	tr := New(Config{Clock: fakeClock()})
	root := tr.Begin("request")
	child := root.Child("work")
	child.End()
	root.End()
	spans := tr.Snapshot(0)

	once := BuildCanonicalTree(spans)
	// A faulted duplicate delivery replays the same deterministic spans; the
	// canonical tree must collapse them.
	twice := BuildCanonicalTree(append(append([]SpanData(nil), spans...), spans...))
	a, _ := MarshalCanonicalJSON(spans)
	b, _ := MarshalCanonicalJSON(append(append([]SpanData(nil), spans...), spans...))
	if len(once) != len(twice) {
		t.Fatalf("duplicate spans changed root count: %d vs %d", len(once), len(twice))
	}
	if string(a) != string(b) {
		t.Errorf("duplicate spans changed canonical bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteMergedChromeTraceTracksPerNode(t *testing.T) {
	tr := New(Config{Clock: fakeClock()})
	sp := tr.Begin("request")
	sp.End()
	spans := tr.Snapshot(0)

	var buf stringWriter
	err := WriteMergedChromeTrace(&buf, []NodeTrack{
		{PID: 1, Label: "router", Epoch: tr.epoch, Spans: spans},
		{PID: 2, Label: "replica 0", Epoch: tr.epoch, Spans: spans},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"router"`, `"replica 0"`, `"pid":1`, `"pid":2`, `"trace"`} {
		if !contains(out, want) {
			t.Errorf("merged chrome trace missing %s:\n%s", want, out)
		}
	}
}

type stringWriter struct{ b []byte }

func (w *stringWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *stringWriter) String() string              { return string(w.b) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
