package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). The format
// is the chrome://tracing / Perfetto JSON described in the Trace Event
// Format document: nesting is implied by ts/dur containment on a (pid, tid)
// track, and args carry the span attributes plus explicit id/parent links so
// machine consumers need not reconstruct nesting from time intervals.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds since the tracer epoch
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object Perfetto and chrome://tracing
// both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeSpanEvent renders one completed span as a Chrome complete event on
// the given pid, with timestamps relative to epoch.
func chromeSpanEvent(s SpanData, epoch time.Time, pid int) chromeEvent {
	cat := "span"
	if s.Volatile {
		cat = "volatile"
	}
	args := make(map[string]string, len(s.Attrs)+len(s.VolatileAttrs)+3)
	for _, a := range s.Attrs {
		args[a.Key] = a.Value
	}
	for _, a := range s.VolatileAttrs {
		args[a.Key] = a.Value
	}
	args["id"] = fmt.Sprintf("%016x", s.ID)
	if s.Parent != 0 {
		args["parent"] = fmt.Sprintf("%016x", s.Parent)
	}
	if s.Trace != 0 {
		args["trace"] = fmt.Sprintf("%016x", s.Trace)
	}
	return chromeEvent{
		Name:  s.Name,
		Cat:   cat,
		Phase: "X",
		TS:    float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
		Dur:   float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3,
		PID:   pid,
		TID:   s.Track + 1,
		Args:  args,
	}
}

// WriteChromeTrace renders every retained completed span as Chrome
// trace-event JSON. Volatile spans and attributes are included — this is the
// profiling artifact, not the determinism witness (use CanonicalJSON for
// that). Event order follows span End order; viewers sort by ts themselves.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"))
		return err
	}
	spans := t.Snapshot(0)
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeSpanEvent(s, t.epoch, 1))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// NodeTrack is one node's contribution to a merged multi-process Chrome
// export: a display label, the node's own epoch (its spans' timestamps are
// rendered relative to it — cross-node clocks are not aligned), and the
// spans themselves.
type NodeTrack struct {
	// PID is the Chrome process ID the node renders as (one track group per
	// node; must be unique across the export).
	PID int
	// Label names the process in the viewer (e.g. "router", "replica 1").
	Label string
	// Epoch is the zero point for this node's timestamps.
	Epoch time.Time
	// Spans are the node's completed spans.
	Spans []SpanData
}

// WriteMergedChromeTrace renders several nodes' span sets as one Chrome
// trace with one process per node, the cluster-wide view of a distributed
// trace: each node's spans keep their own epoch-relative timeline, and the
// id/parent/trace args let machine consumers stitch the cross-node edges
// that time containment cannot express.
func WriteMergedChromeTrace(w io.Writer, nodes []NodeTrack) error {
	var total int
	for _, n := range nodes {
		total += len(n.Spans) + 1
	}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, total), DisplayTimeUnit: "ms"}
	for _, n := range nodes {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "process_name",
			Cat:   "__metadata",
			Phase: "M",
			PID:   n.PID,
			Args:  map[string]string{"name": n.Label},
		})
		for _, s := range n.Spans {
			out.TraceEvents = append(out.TraceEvents, chromeSpanEvent(s, n.Epoch, n.PID))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TreeNode is one node of the canonical span tree: the deterministic
// skeleton of a trace with all timestamps, volatile spans, and volatile
// attributes removed.
type TreeNode struct {
	Name     string      `json:"name"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*TreeNode `json:"children,omitempty"`
}

// BuildCanonicalTree assembles non-volatile spans into root-ordered trees.
// Children are ordered by their structural birth index, which is a pure
// function of program structure, so for a fixed seed the tree is identical
// across worker counts and steal schedules. Spans whose parent is absent from
// the set (ring-evicted, never ended, or living on a node that failed to
// report) surface as roots.
//
// Span IDs are deterministic, so the same logical span can appear more than
// once in a merged cluster set — a faulted duplicate delivery replays the
// identical request on the receiver, producing a second tree with the same
// IDs. Repeated IDs are collapsed to the first occurrence, which is what
// makes the canonical form stable under duplicate-injecting chaos schedules.
func BuildCanonicalTree(spans []SpanData) []*TreeNode {
	type entry struct {
		data SpanData
		node *TreeNode
	}
	byID := make(map[uint64]entry, len(spans))
	type edge struct {
		seq    uint64
		id     uint64
		parent uint64
	}
	edges := make([]edge, 0, len(spans))
	for _, s := range spans {
		if s.Volatile {
			continue
		}
		if _, dup := byID[s.ID]; dup {
			continue
		}
		byID[s.ID] = entry{s, &TreeNode{Name: s.Name, Attrs: s.Attrs}}
		edges = append(edges, edge{seq: s.Seq, id: s.ID, parent: s.Parent})
	}
	// Attach children in (parent, seq) order. Sorting by (parent, seq, id)
	// makes assembly independent of End order, which can vary when sibling
	// spans end concurrently.
	slices.SortFunc(edges, func(a, b edge) int {
		switch {
		case a.parent != b.parent:
			if a.parent < b.parent {
				return -1
			}
			return 1
		case a.seq != b.seq:
			if a.seq < b.seq {
				return -1
			}
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	var roots []*TreeNode
	var rootEdges []edge
	for _, e := range edges {
		if e.parent == 0 {
			rootEdges = append(rootEdges, e)
			continue
		}
		parent, ok := byID[e.parent]
		if !ok {
			rootEdges = append(rootEdges, e)
			continue
		}
		parent.node.Children = append(parent.node.Children, byID[e.id].node)
	}
	slices.SortFunc(rootEdges, func(a, b edge) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	for _, e := range rootEdges {
		roots = append(roots, byID[e.id].node)
	}
	return roots
}

// MarshalCanonicalJSON renders spans as the canonical indented-JSON tree.
// For a fixed seed the bytes are identical across worker counts and
// scheduling policies — the determinism witness the golden tests compare.
func MarshalCanonicalJSON(spans []SpanData) ([]byte, error) {
	return json.MarshalIndent(BuildCanonicalTree(spans), "", "  ")
}

// CanonicalTree assembles the tracer's retained non-volatile spans into
// root-ordered trees; see BuildCanonicalTree.
func (t *Tracer) CanonicalTree() []*TreeNode {
	if t == nil {
		return nil
	}
	return BuildCanonicalTree(t.Snapshot(0))
}

// CanonicalJSON renders the canonical tree as indented JSON; see
// MarshalCanonicalJSON.
func (t *Tracer) CanonicalJSON() ([]byte, error) {
	return MarshalCanonicalJSON(t.Snapshot(0))
}
