package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

func fakeClock() *clock.Fake {
	return clock.NewFake(time.Unix(1000, 0))
}

// buildRun simulates one run's span structure: a root with two levels, each
// level with sweeps and kernel children, plus schedule-dependent keyed worker
// spans whose count varies with the simulated worker count.
func buildRun(t *Tracer, workers int) {
	run := t.Begin("run")
	run.SetAttr("seed", "1")
	run.SetVolatileUint("workers", uint64(workers))
	for level := 0; level < 2; level++ {
		lv := run.Child("level")
		lv.SetUint("level", uint64(level))
		for sweep := 0; sweep < 2; sweep++ {
			sw := lv.Child("sweep")
			sw.SetUint("sweep", uint64(sweep))
			sw.SetUint("cam_hits", 42)
			fbc := sw.Child("FindBestCommunity")
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ws := fbc.ChildKeyed("worker", uint64(w))
					ws.SetVolatileUint("steals", uint64(w))
					ws.End()
				}(w)
			}
			wg.Wait()
			fbc.End()
			um := sw.Child("UpdateMembers")
			um.End()
			sw.End()
		}
		lv.End()
	}
	run.End()
}

// TestDeterministicIDs: same seed + same structure => identical span IDs,
// regardless of the tracer instance.
func TestDeterministicIDs(t *testing.T) {
	a := New(Config{Clock: fakeClock(), Seed: 7})
	b := New(Config{Clock: fakeClock(), Seed: 7})
	buildRun(a, 1)
	buildRun(b, 1)
	sa, sb := a.Snapshot(0), b.Snapshot(0)
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("snapshot sizes %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].ID != sb[i].ID || sa[i].Parent != sb[i].Parent || sa[i].Name != sb[i].Name {
			t.Fatalf("span %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	c := New(Config{Clock: fakeClock(), Seed: 8})
	buildRun(c, 1)
	if c.Snapshot(0)[0].ID == sa[0].ID {
		t.Error("different seeds produced the same span ID")
	}
}

// TestCanonicalTreeWorkerInvariance: the canonical tree excludes volatile
// spans and attributes, so simulated 1-worker and 4-worker runs produce
// byte-identical canonical JSON.
func TestCanonicalTreeWorkerInvariance(t *testing.T) {
	one := New(Config{Clock: fakeClock(), Seed: 1})
	four := New(Config{Clock: fakeClock(), Seed: 1})
	buildRun(one, 1)
	buildRun(four, 4)
	j1, err := one.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j4, err := four.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Errorf("canonical trees differ across worker counts:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", j1, j4)
	}
	// The tree must still contain the deterministic structure.
	var roots []*TreeNode
	if err := json.Unmarshal(j1, &roots); err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name != "run" {
		t.Fatalf("want a single 'run' root, got %v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("want 2 level children, got %d", len(roots[0].Children))
	}
	sweep := roots[0].Children[0].Children[0]
	if sweep.Name != "sweep" || len(sweep.Children) != 2 {
		t.Fatalf("sweep structure wrong: %+v", sweep)
	}
	if sweep.Children[0].Name != "FindBestCommunity" || sweep.Children[1].Name != "UpdateMembers" {
		t.Fatalf("kernel children wrong: %s, %s", sweep.Children[0].Name, sweep.Children[1].Name)
	}
	if len(sweep.Children[0].Children) != 0 {
		t.Error("volatile worker spans leaked into the canonical tree")
	}
	for _, a := range roots[0].Attrs {
		if a.Key == "workers" {
			t.Error("volatile attr 'workers' leaked into the canonical tree")
		}
	}
}

// TestConcurrentSpans hammers Begin/Child/ChildKeyed/SetAttr/End from many
// goroutines; run under -race this is the tracer's thread-safety proof.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Seed: 3, RingSize: 64})
	root := tr.Begin("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := root.ChildKeyed("worker", uint64(i))
				s.SetVolatileUint("iter", uint64(j))
				s.SetTrack(i + 1)
				c := tr.Begin("aux")
				c.SetAttr("k", "v")
				c.End()
				s.End()
				_ = tr.Snapshot(8)
				_ = tr.Len()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 64 {
		t.Errorf("ring should cap retained spans at 64, got %d", got)
	}
}

// TestRingEviction: only the most recent RingSize spans survive, in End
// order.
func TestRingEviction(t *testing.T) {
	tr := New(Config{Clock: fakeClock(), Seed: 1, RingSize: 3})
	for i := 0; i < 10; i++ {
		s := tr.Begin("s")
		s.SetUint("i", uint64(i))
		s.End()
	}
	got := tr.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("want 3 retained spans, got %d", len(got))
	}
	for i, s := range got {
		if want := strconv.FormatUint(uint64(7+i), 10); s.Attrs[0].Value != want {
			t.Errorf("span %d: want i=%s, got %s", i, want, s.Attrs[0].Value)
		}
	}
	if n := tr.Snapshot(2); len(n) != 2 {
		t.Errorf("Snapshot(2) returned %d spans", len(n))
	}
}

// TestNilSafety: a nil tracer and nil spans absorb every call.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Begin("x")
	s.SetAttr("a", "b")
	s.SetUint("c", 1)
	s.SetFloat("d", 1.5)
	s.SetVolatileAttr("e", "f")
	s.SetVolatileUint("g", 2)
	s.SetVolatileFloat("h", 2.5)
	s.SetTrack(1)
	c := s.Child("y")
	k := s.ChildKeyed("z", 1)
	c.End()
	k.End()
	s.End()
	if tr.Len() != 0 || tr.Snapshot(0) != nil || tr.CanonicalTree() != nil {
		t.Error("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer Chrome trace is not valid JSON: %v", err)
	}
}

// TestEndIdempotent: double End commits the span once and attr writes after
// End are dropped.
func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Clock: fakeClock(), Seed: 1})
	s := tr.Begin("once")
	s.End()
	s.SetAttr("late", "ignored")
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("want 1 committed span, got %d", tr.Len())
	}
	if attrs := tr.Snapshot(0)[0].Attrs; len(attrs) != 0 {
		t.Errorf("attr set after End leaked: %v", attrs)
	}
}
