package pagerank

import (
	"context"
	"errors"
	"testing"

	"github.com/asamap/asamap/internal/graph"
)

func directedRing(n int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for v := 0; v < n; v++ {
		_ = b.AddEdge(uint32(v), uint32((v+1)%n), 1)
	}
	return b.Build()
}

func TestComputeContextCanceled(t *testing.T) {
	g := directedRing(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeContext(ctx, g, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestComputeContextBackgroundMatchesCompute(t *testing.T) {
	g := directedRing(100)
	a, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeContext(context.Background(), g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || len(a.Rank) != len(b.Rank) {
		t.Fatalf("Compute and ComputeContext diverge: %d/%d iterations", a.Iterations, b.Iterations)
	}
	for i := range a.Rank {
		if a.Rank[i] != b.Rank[i] {
			t.Fatalf("rank %d differs: %g vs %g", i, a.Rank[i], b.Rank[i])
		}
	}
}
