// Package pagerank computes ergodic vertex visit probabilities — the
// PageRank kernel of HyPC-Map. Infomap's map equation needs the stationary
// distribution of the random walk (with teleportation) over the graph; for
// undirected graphs this distribution has the closed form p_u ∝ strength(u),
// while directed graphs require power iteration.
package pagerank

import (
	"context"
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/sched"
)

// Config controls the power iteration.
type Config struct {
	Damping   float64 // continuation probability (1 - teleportation), typically 0.85
	Tolerance float64 // L1 convergence threshold
	MaxIter   int     // iteration cap
	Workers   int     // parallel workers; <=0 means 1
}

// DefaultConfig returns the standard parameterization used by the paper's
// PageRank kernel (damping 0.85).
func DefaultConfig() Config {
	return Config{Damping: 0.85, Tolerance: 1e-12, MaxIter: 200, Workers: 1}
}

// Result carries the stationary distribution and convergence diagnostics.
type Result struct {
	Rank       []float64 // visit probabilities, sums to 1
	Iterations int       // power iterations performed (0 for closed form)
	Delta      float64   // final L1 change
}

// Undirected returns the closed-form stationary distribution of the random
// walk on an undirected graph: p_u = strength(u) / totalWeight. Vertices with
// zero strength receive rank 1/n of the teleportation mass, matching how the
// reference Infomap smooths dangling vertices.
func Undirected(g *graph.Graph) *Result {
	n := g.N()
	rank := make([]float64, n)
	if n == 0 {
		return &Result{Rank: rank}
	}
	total := g.TotalWeight()
	if total == 0 {
		for i := range rank {
			rank[i] = 1 / float64(n)
		}
		return &Result{Rank: rank}
	}
	dangling := 0
	for u := 0; u < n; u++ {
		s := g.OutStrength(u)
		rank[u] = s / total
		if s == 0 {
			dangling++
		}
	}
	if dangling > 0 {
		// Redistribute a tiny uniform mass so the distribution stays a
		// probability vector with full support.
		eps := 1e-12
		rest := 1 - eps
		for u := 0; u < n; u++ {
			rank[u] = rank[u]*rest + eps/float64(n)
		}
	}
	return &Result{Rank: rank}
}

// Compute runs parallel power iteration with teleportation on the graph. For
// undirected graphs it short-circuits to the closed form. The returned ranks
// always sum to 1 (within floating-point error).
func Compute(g *graph.Graph, cfg Config) (*Result, error) {
	// Documented non-cancellable convenience entry point; callers who need
	// preemption use ComputeContext.
	return ComputeContext(context.Background(), g, cfg)
}

// ComputeContext is Compute under a context: cancellation is observed before
// every power iteration, returning ctx.Err() promptly. The worker goroutines
// of an iteration always run to completion first, so none leak.
func ComputeContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return nil, fmt.Errorf("pagerank: damping %g out of (0,1)", cfg.Damping)
	}
	if cfg.MaxIter <= 0 {
		return nil, fmt.Errorf("pagerank: MaxIter %d must be positive", cfg.MaxIter)
	}
	if cfg.Tolerance <= 0 {
		return nil, fmt.Errorf("pagerank: tolerance %g must be positive", cfg.Tolerance)
	}
	if !g.Directed() {
		return Undirected(g), nil
	}
	n := g.N()
	if n == 0 {
		return &Result{Rank: nil}, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	outStrength := make([]float64, n)
	for u := 0; u < n; u++ {
		rank[u] = 1 / float64(n)
		outStrength[u] = g.OutStrength(u)
	}

	// Persistent worker pool with degree-aware blocks, reused across all
	// power iterations (the old per-iteration goroutine spawn paid startup
	// cost ~200 times per run). Each vertex's update walks its in-adjacency,
	// so blocks are cut on the prefix sum of in-degrees.
	var pool *sched.Pool
	var bounds []int
	if workers > 1 && n >= workers*64 {
		pool = sched.NewPool(workers)
		defer pool.Close()
		bounds = sched.WeightedBounds(n, workers*4, func(v int) int64 {
			return int64(g.InDegree(v)) + 1
		})
	}
	iterate := func(body func(lo, hi int)) {
		if pool == nil {
			body(0, n)
			return
		}
		pool.Dispatch(bounds, sched.Steal, func(_, _, lo, hi int) error {
			body(lo, hi)
			return nil
		})
	}

	res := &Result{}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Mass from dangling vertices is spread uniformly.
		danglingMass := 0.0
		for u := 0; u < n; u++ {
			if outStrength[u] == 0 {
				danglingMass += rank[u]
			}
		}
		base := (1-cfg.Damping)/float64(n) + cfg.Damping*danglingMass/float64(n)

		iterate(func(lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				in, ws := g.InNeighbors(v), g.InWeights(v)
				for i, u := range in {
					sum += rank[u] * ws[i] / outStrength[u]
				}
				next[v] = base + cfg.Damping*sum
			}
		})

		delta := 0.0
		for u := 0; u < n; u++ {
			delta += math.Abs(next[u] - rank[u])
		}
		rank, next = next, rank
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < cfg.Tolerance {
			break
		}
	}
	// Normalize defensively.
	sum := 0.0
	for _, p := range rank {
		sum += p
	}
	if sum > 0 {
		for i := range rank {
			rank[i] /= sum
		}
	}
	res.Rank = rank
	return res, nil
}
