package pagerank

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestUndirectedClosedForm(t *testing.T) {
	// Path 0-1-2: strengths 1,2,1, total 4.
	b := graph.NewBuilder(3, false)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	res := Undirected(g)
	want := []float64{0.25, 0.5, 0.25}
	for i, w := range want {
		if math.Abs(res.Rank[i]-w) > 1e-12 {
			t.Fatalf("rank[%d] = %g, want %g", i, res.Rank[i], w)
		}
	}
}

func TestComputeUsesClosedFormForUndirected(t *testing.T) {
	g, _ := gen.Ring(10)
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("undirected graph ran %d power iterations", res.Iterations)
	}
	for _, p := range res.Rank {
		if math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("ring rank %g, want 0.1", p)
		}
	}
}

func TestDirectedCycleUniform(t *testing.T) {
	n := 5
	b := graph.NewBuilder(n, true)
	for u := 0; u < n; u++ {
		_ = b.AddEdge(uint32(u), uint32((u+1)%n), 1)
	}
	g := b.Build()
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Rank {
		if math.Abs(p-0.2) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %g, want 0.2", i, p)
		}
	}
	if math.Abs(sum(res.Rank)-1) > 1e-9 {
		t.Fatalf("ranks sum to %g", sum(res.Rank))
	}
}

func TestDanglingVertices(t *testing.T) {
	// 0 -> 1, 1 is a sink.
	b := graph.NewBuilder(2, true)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(res.Rank)-1) > 1e-9 {
		t.Fatalf("ranks sum to %g with dangling vertex", sum(res.Rank))
	}
	if res.Rank[1] <= res.Rank[0] {
		t.Fatalf("sink should outrank source: %v", res.Rank)
	}
}

func TestHubAttractsRank(t *testing.T) {
	// Star pointing to center: center should dominate.
	n := 11
	b := graph.NewBuilder(n, true)
	for u := 1; u < n; u++ {
		_ = b.AddEdge(uint32(u), 0, 1)
		_ = b.AddEdge(0, uint32(u), 1) // return edges so nothing is dangling
	}
	g := b.Build()
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u < n; u++ {
		if res.Rank[0] <= res.Rank[u] {
			t.Fatalf("center rank %g <= leaf rank %g", res.Rank[0], res.Rank[u])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rng.New(31)
	g, err := gen.RMAT(11, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	serial, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Compute(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Rank {
		if math.Abs(serial.Rank[i]-par.Rank[i]) > 1e-9 {
			t.Fatalf("parallel mismatch at %d: %g vs %g", i, serial.Rank[i], par.Rank[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := gen.Ring(5)
	bad := DefaultConfig()
	bad.Damping = 1.5
	if _, err := Compute(g, bad); err == nil {
		t.Fatal("damping 1.5 accepted")
	}
	bad = DefaultConfig()
	bad.MaxIter = 0
	if _, err := Compute(g, bad); err == nil {
		t.Fatal("MaxIter 0 accepted")
	}
	bad = DefaultConfig()
	bad.Tolerance = 0
	if _, err := Compute(g, bad); err == nil {
		t.Fatal("Tolerance 0 accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, true).Build()
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rank) != 0 {
		t.Fatal("empty graph produced ranks")
	}
	// Undirected empty-weight graph: uniform.
	g2 := graph.NewBuilder(4, false).Build()
	res2 := Undirected(g2)
	for _, p := range res2.Rank {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("edgeless rank %g, want uniform 0.25", p)
		}
	}
}

func TestConvergenceReported(t *testing.T) {
	r := rng.New(33)
	g, _ := gen.RMAT(9, 4, r)
	res, err := Compute(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.Iterations >= 200 {
		t.Fatalf("suspicious iteration count %d", res.Iterations)
	}
	if res.Delta >= 1e-11 {
		t.Fatalf("did not converge: delta %g", res.Delta)
	}
}
