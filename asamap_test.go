package asamap_test

import (
	"strings"
	"testing"

	asamap "github.com/asamap/asamap"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: build a graph, detect communities with both backends, compare with
// the Louvain baseline and the quality metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	b := asamap.NewGraphBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()

	opt := asamap.DefaultOptions()
	opt.Kind = asamap.ASAAccumulator
	opt.ASAConfig = asamap.DefaultASAConfig()
	res, err := asamap.DetectCommunities(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("facade run found %d modules", res.NumModules)
	}
	mods := asamap.CommunityModules(res.Membership)
	if len(mods) != 2 || len(mods[0])+len(mods[1]) != 6 {
		t.Fatalf("modules: %v", mods)
	}

	lv, err := asamap.DetectCommunitiesLouvain(g, asamap.DefaultLouvainOptions())
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := asamap.NMI(res.Membership, lv.Membership)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.99 {
		t.Fatalf("Infomap and Louvain disagree on the trivial graph: NMI %g", nmi)
	}
	ari, err := asamap.ARI(res.Membership, lv.Membership)
	if err != nil || ari < 0.99 {
		t.Fatalf("ARI %g (%v)", ari, err)
	}
	if q := asamap.Modularity(g, res.Membership, 1); q < 0.3 {
		t.Fatalf("modularity %g", q)
	}
}

func TestPublicAPIReadGraph(t *testing.T) {
	input := "# comment\n1 2\n2 3 1.5\n"
	g, labels, err := asamap.ReadGraph(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || len(labels) != 3 {
		t.Fatalf("N=%d labels=%v", g.N(), labels)
	}
	res, err := asamap.DetectCommunities(g, asamap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 3 {
		t.Fatal("membership length wrong")
	}
}
