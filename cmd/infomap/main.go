// Command infomap detects communities in a SNAP-format edge-list file using
// the parallel Infomap implementation, with a choice of sparse-accumulation
// backend (software hash baseline, ASA accelerator model, or Go map).
//
// Usage:
//
//	infomap -in graph.txt                       # undirected, baseline backend
//	infomap -in graph.txt -directed -accum asa  # directed, ASA backend
//	infomap -in graph.txt -out communities.txt  # write "vertex module" lines
//	infomap -in graph.txt -workers 4 -stats     # parallel run + kernel stats
//	infomap -in graph.txt -timeout 30s          # bound the wall-clock time
//	infomap -in graph.txt -delta changes.txt \
//	    -warm-start -frontier-hops 2            # incremental re-detection
//	infomap -in graph.txt -dist-ranks 8 \
//	    -fault-drop 0.2 -fault-crash-rank 1 -fault-crash-step 2 \
//	    -fault-down-for 3                       # faulted distributed run
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/dist"
	"github.com/asamap/asamap/internal/export"
	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/pagerank"
	"github.com/asamap/asamap/internal/perf"
)

func main() {
	in := flag.String("in", "", "input edge-list file (SNAP format); required")
	out := flag.String("out", "", "output file for 'vertex<TAB>module' lines (default: stdout summary only)")
	directed := flag.Bool("directed", false, "treat edges as directed arcs")
	accumKind := flag.String("accum", "baseline", "accumulator backend: baseline | asa | gomap | hashgraph")
	camKB := flag.Int("cam-kb", 8, "CAM size in KB for the asa backend")
	workers := flag.Int("workers", 1, "parallel workers (0 = all CPUs)")
	schedPolicy := flag.String("sched", "steal", "sweep scheduling policy: steal | static")
	seed := flag.Uint64("seed", 1, "seed for the visitation order")
	stats := flag.Bool("stats", false, "print kernel breakdown and modeled hardware counters")
	hierarchical := flag.Bool("hierarchical", false, "detect a multi-level hierarchy (hierarchical map equation)")
	teleport := flag.String("teleport", "recorded", "directed teleportation model: recorded | unrecorded")
	tree := flag.String("tree", "", "write the hierarchy in Infomap .tree format to this path (implies -hierarchical)")
	gexf := flag.String("gexf", "", "write the community-colored graph as GEXF (Gephi) to this path")
	dot := flag.String("dot", "", "write the community-colored graph as Graphviz DOT to this path")
	deltaPath := flag.String("delta", "", "delta edge-list file (+/-/= ops over the input file's vertex labels) applied to -in before detection")
	warmStart := flag.Bool("warm-start", false, "with -delta: run the parent graph cold, then seed the child run from its partition")
	frontierHops := flag.Int("frontier-hops", 2, "with -warm-start: re-optimize only vertices within this many hops of the delta's endpoints")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto) to this path")
	distRanks := flag.Int("dist-ranks", 0, "run the simulated distributed substrate on this many ranks instead of the shared-memory path (0 = off)")
	faultDrop := flag.Float64("fault-drop", 0, "distributed: per-message delta-batch drop probability")
	faultDup := flag.Float64("fault-dup", 0, "distributed: per-message duplication probability")
	faultDelay := flag.Float64("fault-delay", 0, "distributed: per-message one-superstep delay probability")
	faultCrashRank := flag.Int("fault-crash-rank", -1, "distributed: crash this rank (-1 = no crash)")
	faultCrashStep := flag.Int("fault-crash-step", 0, "distributed: global superstep at which the rank crashes")
	faultDownFor := flag.Int("fault-down-for", 1, "distributed: supersteps the crashed rank stays down")
	faultSeed := flag.Uint64("fault-seed", 1, "distributed: seed for the fault injector's draws")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "infomap: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	g, labels, err := graph.ReadEdgeListFile(*in, *directed)
	if err != nil {
		fatal(err)
	}

	// An incremental run keeps the parent graph around: the delta file's ops
	// are remapped from the input file's labels to dense IDs, applied to build
	// the child, and (with -warm-start) the parent partition seeds the child
	// run so only the delta's k-hop frontier re-optimizes.
	if *warmStart && *deltaPath == "" {
		fatal(fmt.Errorf("-warm-start requires -delta"))
	}
	var parent *graph.Graph
	var touched []uint32
	if *deltaPath != "" {
		raw, err := graph.ReadDeltaListFile(*deltaPath)
		if err != nil {
			fatal(err)
		}
		var d *graph.Delta
		d, labels = remapDelta(raw, labels)
		parent = g
		g, err = d.Apply(parent)
		if err != nil {
			fatal(err)
		}
		touched = d.Touched()
		fmt.Printf("delta: %d ops touching %d vertices (%d -> %d vertices, %d -> %d arcs)\n",
			len(d.Ops), len(touched), parent.N(), g.N(), parent.M(), g.M())
	}

	opt := infomap.DefaultOptions()
	opt.Workers = *workers
	opt.Seed = *seed
	switch *schedPolicy {
	case "steal":
		opt.Sched = infomap.SchedSteal
	case "static":
		opt.Sched = infomap.SchedStatic
	default:
		fatal(fmt.Errorf("unknown -sched %q", *schedPolicy))
	}
	switch *teleport {
	case "recorded":
		opt.Teleport = infomap.TeleportRecorded
	case "unrecorded":
		opt.Teleport = infomap.TeleportUnrecorded
	default:
		fatal(fmt.Errorf("unknown -teleport %q", *teleport))
	}
	switch *accumKind {
	case "baseline":
		opt.Kind = infomap.Baseline
	case "asa":
		opt.Kind = infomap.ASA
		opt.ASAConfig = asa.Config{CapacityBytes: *camKB * 1024, EntryBytes: 16, Policy: asa.LRU}
	case "gomap":
		opt.Kind = infomap.GoMap
	case "hashgraph":
		opt.Kind = infomap.HashGraph
	default:
		fatal(fmt.Errorf("unknown -accum %q", *accumKind))
	}

	if *distRanks > 0 {
		dopt := dist.DefaultOptions()
		dopt.Ranks = *distRanks
		dopt.Seed = *seed
		dopt.Fault = fault.Config{
			Seed:      *faultSeed,
			DropProb:  *faultDrop,
			DupProb:   *faultDup,
			DelayProb: *faultDelay,
		}
		if *faultCrashRank >= 0 {
			dopt.Fault.InjectCrash = true
			dopt.Fault.CrashRank = *faultCrashRank
			dopt.Fault.CrashStep = *faultCrashStep
			dopt.Fault.CrashDownFor = *faultDownFor
		}
		if *warmStart {
			pres, err := dist.RunContext(ctx, parent, dopt)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("parent: %d modules, codelength %.6f\n", pres.NumModules, pres.Codelength)
			dopt.WarmStart = warmSeed(pres.Membership, pres.NumModules, g.N())
		}
		runDistributed(ctx, g, labels, dopt, *out)
		return
	}

	if *warmStart {
		// Cold run on the parent graph; its partition (new vertices appended
		// as fresh singletons) becomes the child run's warm seed and the
		// delta's endpoints become the frontier seeds.
		pres, err := infomap.RunContext(ctx, parent, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("parent: %s\n", pres)
		opt.WarmStart = warmSeed(pres.Membership, pres.NumModules, g.N())
		opt.FrontierSeeds = touched
		opt.FrontierHops = *frontierHops
	}

	// Span tracing: a nil tracer (flag unset) makes the root span nil and
	// every span operation inside the run a no-op.
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if *traceOut != "" {
		tracer = obs.New(obs.Config{Seed: *seed})
		rootSpan = tracer.Begin("infomap")
		opt.Trace = rootSpan
	}

	res, err := infomap.RunContext(ctx, g, opt)
	if err != nil {
		fatal(err)
	}
	rootSpan.End()

	fmt.Printf("graph: %d vertices, %d arcs (%s)\n", g.N(), g.M(), direction(g))
	fmt.Printf("result: %s\n", res)
	if opt.WarmStart != nil {
		fmt.Printf("warm: frontier %d of %d vertices re-optimized, %d frozen (hops %d)\n",
			res.FrontierSize, g.N(), res.FrozenVertices, opt.FrontierHops)
	}
	fmt.Printf("elapsed: %v (backend %s, %d workers)\n", res.Elapsed, opt.Kind, opt.Workers)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}

	if *hierarchical || *tree != "" {
		hres, err := infomap.RunHierarchicalContext(ctx, g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hierarchy: %s\n", hres)
		if *tree != "" {
			flows, err := nodeFlows(g, opt)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*tree)
			if err != nil {
				fatal(err)
			}
			if err := hres.WriteTree(f, flows, labels); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Infomap .tree to %s\n", *tree)
		}
	}
	if *gexf != "" {
		if err := export.WriteGEXFFile(*gexf, g, res.Membership); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote GEXF to %s\n", *gexf)
	}
	if *dot != "" {
		if err := export.WriteDOTFile(*dot, g, res.Membership); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote DOT to %s\n", *dot)
	}

	if *stats {
		fmt.Printf("\nkernel breakdown:\n%s", res.Breakdown)
		fmt.Printf("scheduler: policy=%s steals=%d mean-imbalance=%.3f\n",
			opt.Sched, res.Steals, res.MeanImbalance())
		machine := perf.Baseline()
		model := perf.DefaultModel(machine)
		name := "softhash"
		switch opt.Kind {
		case infomap.ASA:
			name = "asa"
		case infomap.GoMap:
			name = "gomap"
		case infomap.HashGraph:
			name = "hashgraph"
		}
		hash, err := model.AccumCost(name, res.TotalStats())
		if err != nil {
			fatal(err)
		}
		kernel := model.KernelCost(res.TotalWork())
		total := hash
		total.Add(kernel)
		fmt.Printf("\nmodeled hardware counters (Baseline machine, %s backend):\n", name)
		fmt.Printf("  instructions      %14.0f\n", total.Instructions)
		fmt.Printf("  branches          %14.0f\n", total.Branches)
		fmt.Printf("  mispredictions    %14.0f\n", total.Mispredicts)
		fmt.Printf("  CPI               %14.2f\n", total.CPI())
		fmt.Printf("  hash-op seconds   %14.4f\n", hash.Seconds(machine))
		fmt.Printf("  total seconds     %14.4f\n", total.Seconds(machine))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		for v, m := range res.Membership {
			fmt.Fprintf(bw, "%d\t%d\n", labels[v], m)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d assignments to %s\n", len(res.Membership), *out)
	}
}

// runDistributed executes the simulated distributed substrate (optionally
// under an injected fault scenario) and prints its communication and
// fault-recovery accounting.
func runDistributed(ctx context.Context, g *graph.Graph, labels []uint64, dopt dist.Options, out string) {
	res, err := dist.RunContext(ctx, g, dopt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d arcs (%s)\n", g.N(), g.M(), direction(g))
	fmt.Printf("distributed: %d ranks, %d levels, %d modules, codelength %.6f (one-level %.6f)\n",
		dopt.Ranks, res.Levels, res.NumModules, res.Codelength, res.OneLevelCodelength)
	c := res.Comm
	fmt.Printf("comm: %d supersteps, %d messages, %d bytes, %d updates, modeled %.6fs\n",
		c.Supersteps, c.Messages, c.Bytes, c.UpdatesSent, c.ModeledCommSec)
	fmt.Printf("faults: %d drops, %d retries, %d redelivered bytes, %d recoveries, %d checkpoint bytes, backoff %.6fs\n",
		c.Drops, c.Retries, c.RedeliveredBytes, c.Recoveries, c.CheckpointBytes, c.BackoffSec)
	fmt.Printf("injected: %d drops, %d duplicates, %d delays, %d crashes\n",
		res.Fault.Drops, res.Fault.Duplicates, res.Fault.Delays, res.Fault.Crashes)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		for v, m := range res.Membership {
			fmt.Fprintf(bw, "%d\t%d\n", labels[v], m)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d assignments to %s\n", len(res.Membership), out)
	}
}

// remapDelta translates a delta file's vertex IDs — written in the input
// edge list's original label space — into the dense IDs the loaded graph
// uses. Labels the input never mentioned get fresh dense IDs appended to the
// label table, exactly as ReadEdgeList would have assigned them, so the
// child graph's assignment output still reports original labels.
func remapDelta(d *graph.Delta, labels []uint64) (*graph.Delta, []uint64) {
	dense := make(map[uint64]uint32, len(labels))
	for i, l := range labels {
		dense[l] = uint32(i)
	}
	lookup := func(label uint32) uint32 {
		if id, ok := dense[uint64(label)]; ok {
			return id
		}
		id := uint32(len(labels))
		dense[uint64(label)] = id
		labels = append(labels, uint64(label))
		return id
	}
	out := &graph.Delta{Ops: make([]graph.DeltaEdge, len(d.Ops))}
	for i, op := range d.Ops {
		out.Ops[i] = graph.DeltaEdge{Op: op.Op, From: lookup(op.From), To: lookup(op.To), Weight: op.Weight}
	}
	return out, labels
}

// warmSeed extends a parent partition to the child graph's vertex count:
// vertices the delta created start as fresh singleton modules, mirroring the
// serve API's lineage walk.
func warmSeed(parent []uint32, modules, childN int) []uint32 {
	seed := make([]uint32, childN)
	copy(seed, parent)
	next := uint32(modules)
	for j := len(parent); j < childN; j++ {
		seed[j] = next
		next++
	}
	return seed
}

// nodeFlows recomputes the base visit rates for the .tree output.
func nodeFlows(g *graph.Graph, opt infomap.Options) ([]float64, error) {
	if !g.Directed() {
		f, err := mapeq.NewUndirectedFlow(g)
		if err != nil {
			return nil, err
		}
		return f.NodeFlow, nil
	}
	cfg := pagerank.DefaultConfig()
	cfg.Damping = opt.Damping
	pr, err := pagerank.Compute(g, cfg)
	if err != nil {
		return nil, err
	}
	var f *mapeq.Flow
	if opt.Teleport == infomap.TeleportUnrecorded {
		f, err = mapeq.NewDirectedFlowUnrecorded(g, pr.Rank, opt.Damping)
	} else {
		f, err = mapeq.NewDirectedFlow(g, pr.Rank, opt.Damping)
	}
	if err != nil {
		return nil, err
	}
	return f.NodeFlow, nil
}

func direction(g *graph.Graph) string {
	if g.Directed() {
		return "directed"
	}
	return "undirected"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "infomap: %v\n", err)
	os.Exit(1)
}
