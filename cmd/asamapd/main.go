// Command asamapd serves community detection over HTTP: upload edge lists
// into a content-addressed graph registry, then issue detection requests
// that run on a bounded job queue and are answered from an LRU result cache
// with byte-exact determinism.
//
// Usage:
//
//	asamapd -addr :8715
//	asamapd -addr :8715 -queue 32 -jobs 4 -cache 512 -job-timeout 2m
//	asamapd -preload graph.txt             # register a graph at startup
//
// Replicated deployment — N replicas plus an optional stateless router that
// consistent-hashes graph hashes across them, replicates uploads to each
// key's owners, and fails over (ultimately to local compute) when owners
// are unreachable:
//
//	asamapd -addr :8701 -peers http://h1:8701,http://h2:8702 -self 0
//	asamapd -addr :8702 -peers http://h1:8701,http://h2:8702 -self 1
//	asamapd -addr :8700 -peers http://h1:8701,http://h2:8702 -router
//
// The -peer-fault-* flags point the internal/fault injector at the
// inter-replica paths for chaos drills; all peer traffic then flows through
// the seeded, deterministic fault schedule.
//
// Endpoints:
//
//	POST /v1/graphs[?directed=true]   upload an edge list, returns its hash
//	GET  /v1/graphs/{hash}            registered graph shape
//	GET  /v1/graphs/{hash}/data       canonical edge list (peer replication)
//	POST /v1/graphs/{hash}/delta      upload a delta batch onto a graph or
//	                                  version, returns the child version id
//	GET  /v1/versions/{id}            version lineage metadata
//	GET  /v1/versions/{id}/delta      the version's delta bytes (peer replication)
//	POST /v1/detect                   {"graph":"<hash or version id>","options":{...}};
//	                                  options.warm_start replays the lineage warm
//	GET  /healthz                     liveness + build info + registry/queue/cache stats
//	GET  /metrics                     Prometheus text format (latency histograms, accumulator,
//	                                  cluster counters, Go runtime gauges, trace-drop counters)
//	GET  /metrics/snapshot            machine-readable /metrics twin (cluster federation wire)
//	GET  /cluster/metrics[?format=json]  exact cluster-wide aggregate of every node's metrics,
//	                                  with per-peer scrape-failure accounting (cluster mode)
//	GET  /cluster/status              replication/forwarding/breaker state (cluster mode)
//	GET  /debug/trace[?n=N]           last-N completed spans from the trace ring
//	GET  /debug/trace/{trace-id}      one distributed trace: merged across nodes on a cluster
//	                                  node (?format=chrome for a per-node-track Perfetto export)
//	GET  /debug/profile?kind=heap|cpu[&seconds=N]  one-shot pprof snapshot
//	GET  /debug/pprof/                Go profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/serve"
	"github.com/asamap/asamap/internal/serve/cluster"
)

func main() {
	addr := flag.String("addr", ":8715", "listen address")
	queueCap := flag.Int("queue", 16, "max outstanding detection jobs (queued + running); excess requests get 429")
	jobs := flag.Int("jobs", 2, "detection jobs executed concurrently")
	cacheEntries := flag.Int("cache", 256, "result-cache capacity (entries)")
	maxUpload := flag.Int64("max-upload", 64<<20, "max edge-list upload size in bytes")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock bound (0 = unbounded)")
	preload := flag.String("preload", "", "edge-list file to register at startup (optional)")
	preloadDirected := flag.Bool("preload-directed", false, "treat the preloaded edge list as directed")
	logLevel := flag.String("log-level", "info", "structured log level: debug | info | warn | error")
	traceRing := flag.Int("trace-ring", 4096, "completed spans retained for /debug/trace (0 = default)")

	peers := flag.String("peers", "", "comma-separated replica base URLs; enables cluster mode")
	self := flag.Int("self", -1, "this process's index in -peers (-1 with -router = stateless router)")
	router := flag.Bool("router", false, "run as a stateless router over -peers (no owned shard)")
	replication := flag.Int("replication", 2, "owners per graph hash")
	clusterSeed := flag.Uint64("cluster-seed", 0, "hash-ring placement seed (must match across the cluster)")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "per-attempt timeout for peer calls")
	peerRetries := flag.Int("peer-retries", 2, "retries after a failed peer attempt (negative = none)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive peer failures that trip its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long a tripped breaker stays open (negative = zero)")

	faultSeed := flag.Uint64("peer-fault-seed", 1, "chaos: fault schedule seed for peer paths")
	faultDrop := flag.Float64("peer-fault-drop", 0, "chaos: per-message drop probability on peer paths")
	faultFail := flag.Float64("peer-fault-fail", 0, "chaos: per-message injected-5xx probability on peer paths")
	faultDup := flag.Float64("peer-fault-dup", 0, "chaos: per-message duplication probability on peer paths")
	faultDelay := flag.Float64("peer-fault-delay", 0, "chaos: per-message delay probability on peer paths")
	faultDelayFor := flag.Duration("peer-fault-delay-for", 50*time.Millisecond, "chaos: duration of an injected delay")
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.QueueCapacity = *queueCap
	cfg.Workers = *jobs
	cfg.CacheEntries = *cacheEntries
	cfg.MaxUploadBytes = *maxUpload
	cfg.JobTimeout = *jobTimeout
	cfg.Logger = obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	cfg.TraceRing = *traceRing
	srv := serve.New(cfg)
	defer srv.Close()

	if *preload != "" {
		data, err := os.ReadFile(*preload)
		if err != nil {
			log.Fatalf("asamapd: preload: %v", err)
		}
		info, err := srv.Registry().Add(data, *preloadDirected)
		if err != nil {
			log.Fatalf("asamapd: preload %s: %v", *preload, err)
		}
		log.Printf("preloaded %s: hash=%s vertices=%d arcs=%d", *preload, info.Hash, info.Vertices, info.Arcs)
	}

	handler := srv.Handler()
	if *peers != "" {
		peerURLs := strings.Split(*peers, ",")
		for i := range peerURLs {
			peerURLs[i] = strings.TrimSpace(peerURLs[i])
		}
		nodeSelf := *self
		if *router {
			nodeSelf = -1
		} else if nodeSelf < 0 || nodeSelf >= len(peerURLs) {
			log.Fatalf("asamapd: -self %d out of range for %d peers (or pass -router)", nodeSelf, len(peerURLs))
		}
		ccfg := cluster.Config{
			Self:             nodeSelf,
			Peers:            peerURLs,
			Replication:      *replication,
			Seed:             *clusterSeed,
			PeerTimeout:      *peerTimeout,
			PeerRetries:      *peerRetries,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			Logger:           cfg.Logger,
		}
		fcfg := fault.Config{
			Seed:      *faultSeed,
			DropProb:  *faultDrop,
			FailProb:  *faultFail,
			DupProb:   *faultDup,
			DelayProb: *faultDelay,
		}
		if fcfg.Enabled() {
			inj, err := fault.New(fcfg)
			if err != nil {
				log.Fatalf("asamapd: peer fault config: %v", err)
			}
			from := nodeSelf
			if from < 0 {
				from = len(peerURLs) // the router's injector coordinate
			}
			ccfg.Transport = func(peer int) http.RoundTripper {
				return &fault.Transport{Inj: inj, From: from, To: peer, DelayFor: *faultDelayFor}
			}
			log.Printf("asamapd: CHAOS — peer paths run fault schedule seed=%d drop=%g fail=%g dup=%g delay=%g",
				*faultSeed, *faultDrop, *faultFail, *faultDup, *faultDelay)
		}
		node := cluster.NewNode(srv, ccfg)
		handler = node.Handler()
		role := fmt.Sprintf("replica %d", nodeSelf)
		if nodeSelf < 0 {
			role = "router"
		}
		log.Printf("asamapd: cluster mode — %s of %d peers, replication %d", role, len(peerURLs), ccfg.Replication)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("asamapd listening on %s (queue=%d jobs=%d cache=%d)", *addr, *queueCap, *jobs, *cacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("asamapd: %v", err)
		}
	case s := <-sig:
		log.Printf("asamapd: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "asamapd: shutdown: %v\n", err)
		}
	}
}
