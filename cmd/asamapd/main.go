// Command asamapd serves community detection over HTTP: upload edge lists
// into a content-addressed graph registry, then issue detection requests
// that run on a bounded job queue and are answered from an LRU result cache
// with byte-exact determinism.
//
// Usage:
//
//	asamapd -addr :8715
//	asamapd -addr :8715 -queue 32 -jobs 4 -cache 512 -job-timeout 2m
//	asamapd -preload graph.txt             # register a graph at startup
//
// Endpoints:
//
//	POST /v1/graphs[?directed=true]   upload an edge list, returns its hash
//	GET  /v1/graphs/{hash}            registered graph shape
//	POST /v1/detect                   {"graph":"<hash>","options":{...}}
//	GET  /healthz                     liveness + build info + registry/queue/cache stats
//	GET  /metrics                     Prometheus text format (latency histograms, accumulator counters)
//	GET  /debug/trace[?n=N]           last-N completed spans from the trace ring
//	GET  /debug/pprof/                Go profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8715", "listen address")
	queueCap := flag.Int("queue", 16, "max outstanding detection jobs (queued + running); excess requests get 429")
	jobs := flag.Int("jobs", 2, "detection jobs executed concurrently")
	cacheEntries := flag.Int("cache", 256, "result-cache capacity (entries)")
	maxUpload := flag.Int64("max-upload", 64<<20, "max edge-list upload size in bytes")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock bound (0 = unbounded)")
	preload := flag.String("preload", "", "edge-list file to register at startup (optional)")
	preloadDirected := flag.Bool("preload-directed", false, "treat the preloaded edge list as directed")
	logLevel := flag.String("log-level", "info", "structured log level: debug | info | warn | error")
	traceRing := flag.Int("trace-ring", 4096, "completed spans retained for /debug/trace (0 = default)")
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.QueueCapacity = *queueCap
	cfg.Workers = *jobs
	cfg.CacheEntries = *cacheEntries
	cfg.MaxUploadBytes = *maxUpload
	cfg.JobTimeout = *jobTimeout
	cfg.Logger = obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	cfg.TraceRing = *traceRing
	srv := serve.New(cfg)
	defer srv.Close()

	if *preload != "" {
		data, err := os.ReadFile(*preload)
		if err != nil {
			log.Fatalf("asamapd: preload: %v", err)
		}
		info, err := srv.Registry().Add(data, *preloadDirected)
		if err != nil {
			log.Fatalf("asamapd: preload %s: %v", *preload, err)
		}
		log.Printf("preloaded %s: hash=%s vertices=%d arcs=%d", *preload, info.Hash, info.Vertices, info.Arcs)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("asamapd listening on %s (queue=%d jobs=%d cache=%d)", *addr, *queueCap, *jobs, *cacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("asamapd: %v", err)
		}
	case s := <-sig:
		log.Printf("asamapd: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "asamapd: shutdown: %v\n", err)
		}
	}
}
