// Command asabench regenerates the paper's evaluation: every table and
// figure, plus the extension and ablation studies listed in DESIGN.md.
//
// Usage:
//
//	asabench -exp all                 # run the full evaluation
//	asabench -exp table5              # one experiment
//	asabench -list                    # show available experiments
//	asabench -exp fig6 -quick         # small replicas (seconds, not minutes)
//	asabench -exp fig8 -scale 128     # override the replica scale divisor
//	asabench -exp accum -json BENCH_accum.json
//	                                  # accumulator backend sweep
//	                                  # (gomap/softhash/asa/hashgraph) with a
//	                                  # machine-readable artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/asamap/asamap/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "use small replicas for a fast smoke run")
	seed := flag.Uint64("seed", 1, "seed for generators and runs")
	scale := flag.Int("scale", 0, "override the replica scale divisor (0 = per-network default)")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker counts for multi-core experiments")
	jsonPath := flag.String("json", "", "write a machine-readable JSON artifact here (experiments that support it, e.g. 'sched')")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON artifact here (experiments that support it, e.g. 'sched')")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.ScaleOverride = *scale
	cfg.JSONPath = *jsonPath
	cfg.TraceOut = *traceOut
	if *workers != "" {
		var ws []int
		for _, f := range strings.Split(*workers, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "asabench: bad -workers entry %q\n", f)
				os.Exit(2)
			}
			ws = append(ws, v)
		}
		cfg.Workers = ws
	}

	if *exp == "all" {
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "asabench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	e, err := bench.ByID(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asabench: %v (use -list)\n", err)
		os.Exit(2)
	}
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
	if err := e.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "asabench: %v\n", err)
		os.Exit(1)
	}
}
