// Command asaload drives open-loop detection traffic against an asamapd
// endpoint (single server or router tier) and writes a BENCH_serve.json
// throughput/latency profile built from the internal/trace histograms.
//
// Open loop means arrivals are scheduled by the configured rate, not by
// completions: when the service slows down, requests pile up (bounded by
// -inflight; arrivals beyond the bound are counted as shed, not silently
// dropped), which is how real traffic exercises the queue's backpressure.
//
// Usage:
//
//	asaload -target http://localhost:8715 -rate 100 -duration 10s
//	asaload -self-serve -rate 200 -duration 5s -out BENCH_serve.json
//	asaload -self-serve -self-replicas 3 -fault-drop 0.1 -fault-fail 0.1
//	asaload -self-serve -self-replicas 3 -profile-out prof -trace-out trace.json
//
// -profile-out captures pprof artifacts next to the profile: a CPU profile
// overlapping the load window and a heap snapshot after it, both via the
// service's GET /debug/profile endpoint. -trace-out fetches the merged
// cluster trace of one driven request (Chrome/Perfetto JSON) — with
// -self-replicas it shows the request crossing router and owner tracks.
//
// With -self-serve, asaload hosts the service in-process on loopback
// listeners — zero external dependencies, which is what the CI chaos-smoke
// job uses. -self-replicas N stands up N replica nodes behind a router so
// the profile covers the forwarding/replication paths; the -fault-* flags
// then point the internal/fault injector at the inter-replica wire.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/serve"
	"github.com/asamap/asamap/internal/serve/cluster"
	"github.com/asamap/asamap/internal/trace"
)

func main() {
	target := flag.String("target", "", "endpoint base URL; empty requires -self-serve")
	selfServe := flag.Bool("self-serve", false, "host the service in-process on loopback (CI mode)")
	selfReplicas := flag.Int("self-replicas", 0, "with -self-serve: replica count behind an in-process router (0 = single server)")
	queueCap := flag.Int("queue", 16, "self-serve: job-queue capacity")
	jobs := flag.Int("jobs", 2, "self-serve: concurrent detection jobs")

	faultSeed := flag.Uint64("fault-seed", 1, "self-serve cluster: fault schedule seed")
	faultDrop := flag.Float64("fault-drop", 0, "self-serve cluster: per-message drop probability")
	faultFail := flag.Float64("fault-fail", 0, "self-serve cluster: per-message injected-5xx probability")
	faultDup := flag.Float64("fault-dup", 0, "self-serve cluster: per-message duplication probability")

	nVerts := flag.Int("n", 2000, "vertices per generated LFR graph")
	mu := flag.Float64("mu", 0.3, "LFR mixing parameter")
	nGraphs := flag.Int("graphs", 2, "distinct graphs to upload and spread load over")
	seeds := flag.Int("seeds", 8, "distinct detection seeds per graph (cache-miss diversity)")
	genSeed := flag.Uint64("gen-seed", 7, "graph-generator seed")

	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	inflight := flag.Int("inflight", 256, "max concurrent in-flight requests; arrivals beyond are shed")
	out := flag.String("out", "BENCH_serve.json", `profile output path ("-" = stdout)`)
	profileOut := flag.String("profile-out", "", "pprof artifact path prefix: captures <prefix>.cpu.pprof during the run and <prefix>.heap.pprof after it")
	traceOut := flag.String("trace-out", "", "write the merged Chrome trace of one driven request (cluster-stitched when load hits a router) to this path")
	flag.Parse()

	if *target == "" && !*selfServe {
		fmt.Fprintln(os.Stderr, "asaload: provide -target or -self-serve")
		os.Exit(2)
	}
	base := *target
	if *selfServe {
		stop, url, err := startSelfServe(*selfReplicas, *queueCap, *jobs, fault.Config{
			Seed:     *faultSeed,
			DropProb: *faultDrop,
			FailProb: *faultFail,
			DupProb:  *faultDup,
		})
		if err != nil {
			fatal(err)
		}
		defer stop()
		base = url
	}

	hashes, err := uploadGraphs(base, *nGraphs, *nVerts, *mu, *genSeed)
	if err != nil {
		fatal(err)
	}

	// The CPU profile must overlap the load window, so it runs concurrently
	// with the open loop; the heap snapshot is taken after, when the steady
	// state's allocations are what remain live.
	cpuDone := startCPUProfile(base, *profileOut, *duration)

	res, traceID := drive(base, hashes, *seeds, *rate, *duration, *inflight)

	if cpuDone != nil {
		<-cpuDone
	}
	if *profileOut != "" {
		if err := fetchToFile(base+"/debug/profile?kind=heap", *profileOut+".heap.pprof"); err != nil {
			fmt.Fprintf(os.Stderr, "asaload: heap profile: %v\n", err)
		}
	}
	if *traceOut != "" {
		if traceID == "" {
			fmt.Fprintln(os.Stderr, "asaload: -trace-out: no request returned a trace id")
		} else if err := fetchToFile(base+"/debug/trace/"+traceID+"?format=chrome", *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "asaload: trace fetch: %v\n", err)
		}
	}
	res.Config = map[string]any{
		"target":        *target,
		"self_serve":    *selfServe,
		"self_replicas": *selfReplicas,
		"graphs":        *nGraphs,
		"vertices":      *nVerts,
		"mu":            *mu,
		"seeds":         *seeds,
		"rate_rps":      *rate,
		"duration":      duration.String(),
		"inflight_cap":  *inflight,
		"fault": map[string]any{
			"seed": *faultSeed, "drop": *faultDrop, "fail": *faultFail, "dup": *faultDup,
		},
	}
	res.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	res.Graphs = hashes

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "asaload: %d sent, %d ok, %d throttled, %d errors, %d shed; %.1f req/s, p50=%s p99=%s → %s\n",
		res.Totals.Sent, res.Totals.OK, res.Totals.Throttled, res.Totals.Errors, res.Totals.Shed,
		res.ThroughputRPS, res.Latency.P50, res.Latency.P99, *out)
}

// profile is the BENCH_serve.json document.
type profile struct {
	GeneratedAt   string            `json:"generated_at"`
	Config        map[string]any    `json:"config"`
	Graphs        []string          `json:"graphs"`
	Totals        totals            `json:"totals"`
	ThroughputRPS float64           `json:"throughput_rps"`
	Latency       latencySummary    `json:"latency"`
	LatencyOK     latencySummary    `json:"latency_ok"`
	Cache         map[string]uint64 `json:"cache"`
	ClusterPaths  map[string]uint64 `json:"cluster_paths,omitempty"`
	StatusCounts  map[string]uint64 `json:"status_counts"`
}

type totals struct {
	Sent      uint64 `json:"sent"`
	Completed uint64 `json:"completed"`
	OK        uint64 `json:"ok"`
	Throttled uint64 `json:"throttled_429"`
	Errors    uint64 `json:"errors"`
	Shed      uint64 `json:"shed"`
}

type latencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50    string  `json:"p50"`
	P90    string  `json:"p90"`
	P99    string  `json:"p99"`
}

func summarize(h *trace.Histogram) latencySummary {
	s := h.Snapshot()
	var mean float64
	if s.Count > 0 {
		mean = float64(s.Sum.Milliseconds()) / float64(s.Count)
	}
	return latencySummary{
		Count:  s.Count,
		MeanMS: mean,
		P50:    s.P50().String(),
		P90:    s.P90().String(),
		P99:    s.P99().String(),
	}
}

// startCPUProfile kicks off a concurrent CPU-profile capture covering (most
// of) the load window and returns a channel closed when the artifact is
// written; nil when no prefix was given.
func startCPUProfile(base, prefix string, duration time.Duration) chan struct{} {
	if prefix == "" {
		return nil
	}
	seconds := int(duration.Seconds())
	if seconds < 1 {
		seconds = 1
	}
	if seconds > 10 {
		seconds = 10
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		url := fmt.Sprintf("%s/debug/profile?kind=cpu&seconds=%d", base, seconds)
		if err := fetchToFile(url, prefix+".cpu.pprof"); err != nil {
			fmt.Fprintf(os.Stderr, "asaload: cpu profile: %v\n", err)
		}
	}()
	return done
}

// fetchToFile GETs url and writes the body to path.
func fetchToFile(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return os.WriteFile(path, raw, 0o644)
}

// drive runs the open loop and aggregates the outcome counters. It also
// returns the trace ID of one driven request (preferring one the cluster
// forwarded — the interesting multi-node shape) for -trace-out.
func drive(base string, hashes []string, seeds int, rate float64, duration time.Duration, inflight int) (*profile, string) {
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	histAll := trace.NewLatencyHistogram()
	histOK := trace.NewLatencyHistogram()
	var (
		sent, completed, ok2xx, throttled, errs, shed atomic.Uint64
		mu                                            sync.Mutex
		cache                                         = map[string]uint64{}
		paths                                         = map[string]uint64{}
		statuses                                      = map[string]uint64{}
		traceID                                       string
		traceForwarded                                bool
	)
	sem := make(chan struct{}, inflight)
	hc := &http.Client{Timeout: 2 * time.Minute}
	var wg sync.WaitGroup

	start := time.Now()
	deadline := start.Add(duration)
	for i := 0; time.Now().Before(deadline); i++ {
		select {
		case sem <- struct{}{}:
		default:
			shed.Add(1) // open loop: a saturated client sheds, it does not slow down
			time.Sleep(interval)
			continue
		}
		hash := hashes[i%len(hashes)]
		seed := uint64(i%seeds) + 1
		sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			body, _ := json.Marshal(serve.DetectRequest{Graph: hash, Options: serve.DetectOptions{Seed: seed}})
			t0 := time.Now()
			resp, err := hc.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
			elapsed := time.Since(t0)
			if err != nil {
				errs.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			completed.Add(1)
			histAll.Observe(elapsed)
			switch {
			case resp.StatusCode == http.StatusOK:
				ok2xx.Add(1)
				histOK.Observe(elapsed)
			case resp.StatusCode == http.StatusTooManyRequests:
				throttled.Add(1)
			default:
				errs.Add(1)
			}
			mu.Lock()
			statuses[fmt.Sprintf("%d", resp.StatusCode)]++
			if v := resp.Header.Get("X-Asamap-Cache"); v != "" {
				cache[v]++
			}
			path := resp.Header.Get(cluster.HeaderCluster)
			if path != "" {
				paths[path]++
			}
			if tid := resp.Header.Get("X-Asamap-Trace-Id"); tid != "" && resp.StatusCode == http.StatusOK {
				forwarded := path == "forwarded"
				if traceID == "" || (forwarded && !traceForwarded) {
					traceID, traceForwarded = tid, forwarded
				}
			}
			mu.Unlock()
		}()
		time.Sleep(interval)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &profile{
		Totals: totals{
			Sent:      sent.Load(),
			Completed: completed.Load(),
			OK:        ok2xx.Load(),
			Throttled: throttled.Load(),
			Errors:    errs.Load(),
			Shed:      shed.Load(),
		},
		Latency:      summarize(histAll),
		LatencyOK:    summarize(histOK),
		Cache:        cache,
		StatusCounts: statuses,
	}
	if len(paths) > 0 {
		res.ClusterPaths = paths
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(completed.Load()) / elapsed
	}
	return res, traceID
}

// uploadGraphs generates nGraphs LFR graphs and registers them at base.
func uploadGraphs(base string, nGraphs, nVerts int, mu float64, seed uint64) ([]string, error) {
	hashes := make([]string, 0, nGraphs)
	for i := 0; i < nGraphs; i++ {
		g, _, err := gen.LFR(gen.DefaultLFR(nVerts, mu), rng.New(seed+uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("generate graph %d: %w", i, err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return nil, err
		}
		resp, err := http.Post(base+"/v1/graphs", "text/plain", &buf)
		if err != nil {
			return nil, fmt.Errorf("upload graph %d: %w", i, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("upload graph %d: status %d: %s", i, resp.StatusCode, strings.TrimSpace(string(raw)))
		}
		var info serve.GraphInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, err
		}
		hashes = append(hashes, info.Hash)
	}
	sort.Strings(hashes)
	return hashes, nil
}

// handlerSwap lets loopback listeners exist before the nodes they serve.
type handlerSwap struct{ h atomic.Value }

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

// startSelfServe hosts the service in-process: a single server when replicas
// is 0, otherwise `replicas` nodes behind a router, with the fault injector
// on every inter-replica path. Returns a stop function and the base URL to
// load (the router's, in cluster mode).
func startSelfServe(replicas, queueCap, jobs int, fc fault.Config) (func(), string, error) {
	mkServe := func() *serve.Server {
		cfg := serve.DefaultConfig()
		cfg.QueueCapacity = queueCap
		cfg.Workers = jobs
		cfg.Logger = obs.NewLogger(io.Discard, slog.LevelError)
		return serve.New(cfg)
	}
	serveOn := func(h http.Handler) (*http.Server, net.Listener, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		hs := &http.Server{Handler: h}
		go hs.Serve(ln)
		return hs, ln, nil
	}

	if replicas <= 0 {
		s := mkServe()
		hs, ln, err := serveOn(s.Handler())
		if err != nil {
			s.Close()
			return nil, "", err
		}
		stop := func() { hs.Close(); s.Close() }
		return stop, "http://" + ln.Addr().String(), nil
	}

	inj, err := fault.New(fc)
	if err != nil {
		return nil, "", err
	}
	var (
		stops []func()
		urls  []string
		swaps []*handlerSwap
	)
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	for i := 0; i < replicas; i++ {
		sw := &handlerSwap{}
		hs, ln, err := serveOn(sw)
		if err != nil {
			stopAll()
			return nil, "", err
		}
		stops = append(stops, func() { hs.Close() })
		swaps = append(swaps, sw)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	mkNode := func(self int) *cluster.Node {
		from := self
		if from < 0 {
			from = replicas
		}
		cfg := cluster.Config{
			Self:        self,
			Peers:       urls,
			Replication: 2,
			Seed:        42,
			PeerTimeout: 30 * time.Second,
			Transport: func(peer int) http.RoundTripper {
				return &fault.Transport{Inj: inj, From: from, To: peer, DelayFor: time.Millisecond}
			},
		}
		return cluster.NewNode(mkServe(), cfg)
	}
	for i := 0; i < replicas; i++ {
		n := mkNode(i)
		swaps[i].h.Store(n.Handler())
		stops = append(stops, n.Close)
	}
	router := mkNode(-1)
	hs, ln, err := serveOn(router.Handler())
	if err != nil {
		stopAll()
		return nil, "", err
	}
	stops = append(stops, func() { hs.Close(); router.Close() })
	return stopAll, "http://" + ln.Addr().String(), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "asaload: %v\n", err)
	os.Exit(1)
}
