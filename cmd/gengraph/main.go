// Command gengraph generates synthetic networks in SNAP edge-list format:
// the Table I replicas, LFR benchmark graphs (with ground-truth output), and
// generic power-law graphs.
//
// Usage:
//
//	gengraph -kind replica -name soc-Pokec -scale 32 -out pokec.txt
//	gengraph -kind lfr -n 10000 -mu 0.3 -out lfr.txt -truth lfr.truth
//	gengraph -kind chunglu -n 100000 -avgdeg 12 -exp 2.3 -out cl.txt
//	gengraph -kind rmat -rmat-scale 16 -edgefactor 16 -out rmat.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

func main() {
	kind := flag.String("kind", "replica", "generator: replica | lfr | chunglu | rmat")
	out := flag.String("out", "", "output edge-list path; required")
	seed := flag.Uint64("seed", 1, "generator seed")

	name := flag.String("name", "soc-Pokec", "replica: Table I network name")
	scale := flag.Int("scale", 0, "replica: scale divisor (0 = network default)")

	n := flag.Int("n", 10000, "lfr/chunglu: vertex count")
	mu := flag.Float64("mu", 0.3, "lfr: mixing parameter")
	truth := flag.String("truth", "", "lfr: write planted 'vertex<TAB>community' lines here")

	avgdeg := flag.Float64("avgdeg", 10, "chunglu: average degree")
	exponent := flag.Float64("exp", 2.5, "chunglu: degree power-law exponent")

	rmatScale := flag.Int("rmat-scale", 14, "rmat: log2 of vertex count")
	edgeFactor := flag.Int("edgefactor", 16, "rmat: edges per vertex")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		os.Exit(2)
	}

	var (
		g       *graph.Graph
		planted []uint32
		err     error
	)
	r := rng.New(*seed)
	switch *kind {
	case "replica":
		var spec dataset.Spec
		spec, err = dataset.ByName(*name)
		if err == nil {
			g, err = spec.Generate(*scale, *seed)
		}
	case "lfr":
		g, planted, err = gen.LFR(gen.DefaultLFR(*n, *mu), r)
	case "chunglu":
		maxDeg := *n / 4
		degrees := gen.DegreeSequenceWithMean(*n, *avgdeg, maxDeg, *exponent, r)
		g, err = gen.ChungLu(degrees, r)
	case "rmat":
		g, err = gen.RMAT(*rmatScale, *edgeFactor, r)
	default:
		err = fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	if err := g.WriteEdgeListFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.N(), g.NumEdges())

	if *truth != "" && planted != nil {
		f, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		for v, c := range planted {
			fmt.Fprintf(bw, "%d\t%d\n", v, c)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote ground truth to %s\n", *truth)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
	os.Exit(1)
}
