// Command quality scores a community assignment against a reference
// labeling: NMI, ARI, pairwise precision/recall/F1, and (given the graph)
// modularity and mean conductance. Assignment files hold one
// "vertex<TAB>community" pair per line, as written by cmd/infomap and
// cmd/gengraph.
//
// Usage:
//
//	quality -pred communities.txt -truth lfr.truth [-graph lfr.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
)

func main() {
	pred := flag.String("pred", "", "predicted assignment file; required")
	truth := flag.String("truth", "", "reference assignment file; required")
	graphPath := flag.String("graph", "", "optional edge-list file for modularity/conductance")
	flag.Parse()
	if *pred == "" || *truth == "" {
		fmt.Fprintln(os.Stderr, "quality: -pred and -truth are required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := readAssignment(*pred)
	if err != nil {
		fatal(err)
	}
	tr, err := readAssignment(*truth)
	if err != nil {
		fatal(err)
	}
	if len(p) != len(tr) {
		fatal(fmt.Errorf("assignments cover %d and %d vertices", len(p), len(tr)))
	}
	predLabels, truthLabels := align(p, tr)

	nmi, err := metrics.NMI(predLabels, truthLabels)
	if err != nil {
		fatal(err)
	}
	ari, err := metrics.ARI(predLabels, truthLabels)
	if err != nil {
		fatal(err)
	}
	prec, rec, f1, err := metrics.PairwiseF1(predLabels, truthLabels)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("vertices:   %d\n", len(predLabels))
	fmt.Printf("NMI:        %.4f\n", nmi)
	fmt.Printf("ARI:        %.4f\n", ari)
	fmt.Printf("pair P/R/F: %.4f / %.4f / %.4f\n", prec, rec, f1)

	if *graphPath != "" {
		g, labels, err := graph.ReadEdgeListFile(*graphPath, false)
		if err != nil {
			fatal(err)
		}
		mem := make([]uint32, g.N())
		for dense, orig := range labels {
			c, ok := p[orig]
			if !ok {
				fatal(fmt.Errorf("graph vertex %d missing from -pred", orig))
			}
			mem[dense] = c
		}
		q := louvain.Modularity(g, mem, 1)
		cond, err := metrics.MeanConductance(g, mem)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("modularity: %.4f\n", q)
		fmt.Printf("mean conductance: %.4f\n", cond)
	}
}

// readAssignment parses "vertex<TAB>community" lines.
func readAssignment(path string) (map[uint64]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[uint64]uint32{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want 'vertex community'", path, line)
		}
		v, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad vertex %q", path, line, fields[0])
		}
		c, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad community %q", path, line, fields[1])
		}
		out[v] = uint32(c)
	}
	return out, sc.Err()
}

// align produces parallel label slices over the common vertex set.
func align(pred, truth map[uint64]uint32) ([]uint32, []uint32) {
	var ps, ts []uint32
	for v, c := range pred {
		t, ok := truth[v]
		if !ok {
			continue
		}
		ps = append(ps, c)
		ts = append(ts, t)
	}
	return ps, ts
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "quality: %v\n", err)
	os.Exit(1)
}
