package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot resolves the repository root from this file's location, so tests
// and benchmarks are independent of the working directory.
func repoRoot(tb testing.TB) string {
	tb.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		tb.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestExpandPatternsSkipsFixtureTrees is the regression test for the ./...
// walk: analyzer fixtures contain deliberate contract violations and must
// never be loaded into a repo lint run.
func TestExpandPatternsSkipsFixtureTrees(t *testing.T) {
	root := repoRoot(t)
	dirs, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatalf("expandPatterns: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("expandPatterns matched nothing")
	}
	sep := string(filepath.Separator)
	foundAnalysis := false
	for _, dir := range dirs {
		for _, banned := range []string{"testdata", "vendor", "node_modules"} {
			if strings.Contains(dir+sep, sep+banned+sep) {
				t.Errorf("fixture tree leaked into the package walk: %s", dir)
			}
		}
		if filepath.Base(dir) == "analysis" {
			foundAnalysis = true
		}
	}
	// The analyzer package itself (whose testdata/ subtree is full of
	// deliberate violations) must still be walked.
	if !foundAnalysis {
		t.Error("internal/analysis missing from the walk")
	}
}

// TestRunRejectsUnknownFormat pins the flag validation exit code.
func TestRunRejectsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-format", "xml", "."}, &buf); code != 2 {
		t.Fatalf("run(-format xml) = %d, want 2", code)
	}
}

// TestJSONOutputDeterministic runs the linter twice over the same packages
// and requires byte-identical -format json documents: the canonical-output
// contract CI artifact diffing depends on.
func TestJSONOutputDeterministic(t *testing.T) {
	root := repoRoot(t)
	args := []string{"-format", "json",
		filepath.Join(root, "internal", "clock"),
		filepath.Join(root, "internal", "export"),
	}
	var first, second bytes.Buffer
	code1 := run(args, &first)
	code2 := run(args, &second)
	if code1 != code2 {
		t.Fatalf("exit codes differ across runs: %d vs %d", code1, code2)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("JSON output differs across runs:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
	var doc struct {
		Schema   string `json:"schema"`
		Tool     string `json:"tool"`
		Findings []struct {
			File string `json:"file"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(first.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Schema != "asalint-findings/v1" || doc.Tool != "asalint" {
		t.Fatalf("unexpected envelope: schema=%q tool=%q", doc.Schema, doc.Tool)
	}
	for _, f := range doc.Findings {
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("finding path %q is not module-root-relative with forward slashes", f.File)
		}
	}
}

// BenchmarkAsalintRepo measures one whole-repository lint run — load, graph
// build, all eight analyzers — and doubles as the repo-clean regression in
// bench-smoke (one iteration must exit 0).
func BenchmarkAsalintRepo(b *testing.B) {
	root := repoRoot(b)
	pattern := root + "/..."
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if code := run([]string{pattern}, &buf); code != 0 {
			b.Fatalf("asalint exit %d on the repository:\n%s", code, buf.String())
		}
	}
}
