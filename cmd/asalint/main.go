// Command asalint runs the repository's static-contract analyzer suite
// (internal/analysis) over Go packages and fails the build on any finding.
//
// Standalone use (CI's lint job, `make lint`):
//
//	go run ./cmd/asalint ./...
//	go run ./cmd/asalint ./internal/infomap ./internal/serve
//	go run ./cmd/asalint -format json ./... > findings.json
//
// All packages load through one loader into one shared call graph, so the
// interprocedural analyzers (hotalloc, lockorder, ctxflow, goexit) see
// cross-package edges. Diagnostics print as file:line:col: analyzer: message
// (or as a JSON/SARIF document with -format), and the exit code is 1 when
// any were produced — so the command composes with CI the same way go vet
// does. `-v` additionally surfaces type-check problems the loader tolerated.
//
// The JSON and SARIF documents are canonical: findings sorted by position,
// module-root-relative slash paths, no timestamps — byte-identical across
// runs over identical sources, matching the repository's canonical-output
// discipline, so CI can diff uploaded artifacts between commits.
//
// Vet-tool use (best-effort): `go vet -vettool=$(which asalint) ./...`
// invokes the binary once per package with a JSON config file; asalint
// answers the -V=full version handshake and analyzes the files listed in
// the config. The standalone mode is the supported, CI-enforced path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/asamap/asamap/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("asalint", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print tolerated type-check errors")
	version := fs.String("V", "", "version handshake for go vet -vettool (use -V=full)")
	list := fs.Bool("list", false, "print the analyzer names and docs, then exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: asalint [-v] [-format text|json|sarif] packages...\n\npatterns: ./... dir/... or package directories\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command caches vet results keyed on this line.
		fmt.Fprintf(stdout, "asalint version devel buildID=asalint-suite-v2\n")
		return 0
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "asalint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetTool(patterns[0])
	}

	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "asalint: no packages matched")
		return 2
	}
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	exit := 0
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "asalint: typecheck: %v\n", terr)
			}
		}
		pkgs = append(pkgs, pkg)
	}
	// One shared graph across every loaded package: interprocedural analyzers
	// need cross-package edges (a hot root in internal/infomap reaching an
	// accumulator in internal/hashtab; lock order spanning serve and cluster).
	graph := analysis.BuildGraph(pkgs, nil)
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunWithGraph(pkg, graph, analysis.All(), true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
			exit = 2
			continue
		}
		all = append(all, diags...)
	}
	if len(all) > 0 && exit == 0 {
		exit = 1
	}
	// Per-package runs return sorted diagnostics; sort globally so output
	// order does not depend on package load order.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	root := loader.ModuleRoot
	switch *format {
	case "json":
		if err := writeJSON(stdout, root, all); err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, root, all); err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
			return 2
		}
	default:
		for _, d := range all {
			fmt.Fprintln(stdout, rel(d.String()))
		}
	}
	return exit
}

// relPath renders a diagnostic path module-root-relative with forward
// slashes — the canonical form used by the machine-readable outputs.
func relPath(root, path string) string {
	if root != "" {
		if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(path)
}

// jsonFinding is one diagnostic in the -format json document.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonDocument is the -format json envelope. No timestamps, no absolute
// paths: two runs over identical sources must produce identical bytes.
type jsonDocument struct {
	Schema   string        `json:"schema"`
	Tool     string        `json:"tool"`
	Findings []jsonFinding `json:"findings"`
}

func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	doc := jsonDocument{
		Schema:   "asalint-findings/v1",
		Tool:     "asalint",
		Findings: []jsonFinding{},
	}
	for _, d := range diags {
		doc.Findings = append(doc.Findings, jsonFinding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// writeSARIF emits a minimal SARIF 2.1.0 log: one run, one rule per
// analyzer, one result per diagnostic, deterministic field order via
// struct-based marshaling.
func writeSARIF(w io.Writer, root string, diags []analysis.Diagnostic) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID   string `json:"id"`
		Name string `json:"name"`
		Desc struct {
			Text string `json:"text"`
		} `json:"shortDescription"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region struct {
				StartLine   int `json:"startLine"`
				StartColumn int `json:"startColumn"`
			} `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifLog struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string      `json:"name"`
					Rules []sarifRule `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []sarifResult `json:"results"`
		} `json:"runs"`
	}

	var log sarifLog
	log.Schema = "https://json.schemastore.org/sarif-2.1.0.json"
	log.Version = "2.1.0"
	log.Runs = make([]struct {
		Tool struct {
			Driver struct {
				Name  string      `json:"name"`
				Rules []sarifRule `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []sarifResult `json:"results"`
	}, 1)
	log.Runs[0].Tool.Driver.Name = "asalint"
	for _, a := range analysis.All() {
		r := sarifRule{ID: a.Name, Name: a.Name}
		r.Desc.Text = a.Doc
		log.Runs[0].Tool.Driver.Rules = append(log.Runs[0].Tool.Driver.Rules, r)
	}
	log.Runs[0].Results = []sarifResult{}
	for _, d := range diags {
		res := sarifResult{RuleID: d.Analyzer, Level: "error", Message: sarifMessage{Text: d.Message}}
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = relPath(root, d.Pos.Filename)
		loc.PhysicalLocation.Region.StartLine = d.Pos.Line
		loc.PhysicalLocation.Region.StartColumn = d.Pos.Column
		res.Locations = []sarifLocation{loc}
		log.Runs[0].Results = append(log.Runs[0].Results, res)
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// rel shortens absolute paths in a diagnostic line to be cwd-relative, which
// is what editors and CI annotations expect.
func rel(line string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return line
	}
	if r, ok := strings.CutPrefix(line, cwd+string(filepath.Separator)); ok {
		return r
	}
	return line
}

// expandPatterns resolves go-style package patterns to package directories:
// "./..." walks recursively, anything else is taken as a directory.
//
// The walk deterministically skips testdata/ and fixture trees (vendor,
// hidden, and underscore-prefixed directories too): analyzer fixtures
// contain deliberate contract violations and must never be loaded into a
// repo lint run. filepath.WalkDir visits lexically, so the returned order is
// stable across runs and platforms.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "." || root == "" {
			root = "."
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(filepath.Clean(pat))
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// skipDir reports whether a directory subtree is excluded from ./...
// expansion. testdata holds analyzer fixtures and golden files; vendor,
// hidden, and underscore-prefixed trees follow the go command's own rules.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "vendor" || name == "node_modules"
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// vetConfig is the subset of the go vet -vettool JSON config asalint reads.
type vetConfig struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// runVetTool handles one `go vet -vettool` invocation: analyze the package
// whose files are listed in the config, print diagnostics to stderr, exit
// nonzero when any were found (the go command surfaces stderr verbatim).
// Interprocedural analyzers see only this package's graph in this mode; the
// standalone whole-repo run is the authoritative one.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "asalint: parsing vet config: %v\n", err)
		return 2
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	if dir == "" {
		return 0
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %s: %v\n", dir, err)
		return 2
	}
	diags, err := analysis.Run(pkg, analysis.All(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
