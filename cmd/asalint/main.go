// Command asalint runs the repository's static-contract analyzer suite
// (internal/analysis) over Go packages and fails the build on any finding.
//
// Standalone use (CI's lint job, `make lint`):
//
//	go run ./cmd/asalint ./...
//	go run ./cmd/asalint ./internal/infomap ./internal/serve
//
// Diagnostics print as file:line:col: analyzer: message, and the exit code
// is 1 when any were produced — so the command composes with CI the same
// way go vet does. `-v` additionally surfaces type-check problems the
// loader tolerated.
//
// Vet-tool use (best-effort): `go vet -vettool=$(which asalint) ./...`
// invokes the binary once per package with a JSON config file; asalint
// answers the -V=full version handshake and analyzes the files listed in
// the config. The standalone mode is the supported, CI-enforced path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/asamap/asamap/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asalint", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print tolerated type-check errors")
	version := fs.String("V", "", "version handshake for go vet -vettool (use -V=full)")
	list := fs.Bool("list", false, "print the analyzer names and docs, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: asalint [-v] packages...\n\npatterns: ./... dir/... or package directories\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command caches vet results keyed on this line.
		fmt.Printf("asalint version devel buildID=asalint-suite-v1\n")
		return 0
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runVetTool(patterns[0])
	}

	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "asalint: no packages matched")
		return 2
	}
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %s: %v\n", dir, err)
			exit = 2
			continue
		}
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "asalint: typecheck: %v\n", terr)
			}
		}
		diags, err := analysis.Run(pkg, analysis.All(), true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
			exit = 2
			continue
		}
		for _, d := range diags {
			fmt.Println(rel(d.String()))
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// rel shortens absolute paths in a diagnostic line to be cwd-relative, which
// is what editors and CI annotations expect.
func rel(line string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return line
	}
	if r, ok := strings.CutPrefix(line, cwd+string(filepath.Separator)); ok {
		return r
	}
	return line
}

// expandPatterns resolves go-style package patterns to package directories:
// "./..." walks recursively (skipping testdata, vendor, hidden, and
// examples' node_modules-like noise), anything else is taken as a directory.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "." || root == "" {
			root = "."
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(filepath.Clean(pat))
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// vetConfig is the subset of the go vet -vettool JSON config asalint reads.
type vetConfig struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// runVetTool handles one `go vet -vettool` invocation: analyze the package
// whose files are listed in the config, print diagnostics to stderr, exit
// nonzero when any were found (the go command surfaces stderr verbatim).
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "asalint: parsing vet config: %v\n", err)
		return 2
	}
	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	if dir == "" {
		return 0
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %s: %v\n", dir, err)
		return 2
	}
	diags, err := analysis.Run(pkg, analysis.All(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asalint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
